//! Fluid-flow simulator over the max-min fair model.
//!
//! Flows between the same `(src, dst)` pair always share one max-min rate,
//! so the simulator keeps them in per-pair *groups*. Each group carries a
//! virtual drain clock (`drained`: bytes sent per member flow since the
//! group was created); a flow joining at drain level `d` with `size` bytes
//! completes when the clock reaches `d + size`.
//!
//! The per-event costs are incremental: rate recomputation reuses a
//! persistent [`Waterfiller`] and refills only the link components touched
//! by mutations since the last refresh; the next completion comes from a
//! global ETA min-heap whose entries are generation-stamped (per-group
//! stamps for membership/rate changes, a global epoch for clock movement)
//! instead of a linear scan; and time advancement walks a live-group list,
//! so `(src, dst)` pairs that once carried a flow but drained long ago cost
//! nothing. All of it is exact: the arithmetic — and therefore every
//! simulated timestamp and byte count — is bit-identical to recomputing the
//! world from scratch at every event.

use crate::maxmin::Waterfiller;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use tetrium_cluster::SiteId;
use tetrium_obs::Obs;

/// Handle to a flow inside a [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(usize);

impl FlowKey {
    /// The slab index behind the handle. Keys are reused after removal, so
    /// indices are dense: callers can keep per-flow state in a plain vector
    /// instead of a hash map.
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct FlowRec {
    size_gb: f64,
    /// Group the flow belongs to (`None` for local flows).
    group: Option<usize>,
    /// Group drain level when the flow joined.
    join_drain: f64,
    /// Position in `locals` (meaningful only for alive local flows).
    local_pos: usize,
    alive: bool,
}

#[derive(Debug)]
struct Group {
    src: usize,
    dst: usize,
    count: usize,
    /// Current per-flow rate in GB/s.
    rate: f64,
    /// Bytes drained per member flow since group creation.
    drained: f64,
    /// Completion thresholds `(join_drain + size, flow index)`, min-first;
    /// entries for removed flows are discarded lazily.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Generation stamp: bumped whenever the group's ETA inputs change
    /// (membership or a bitwise rate change), invalidating its entry in
    /// the global ETA heap.
    eta_stamp: u32,
    /// Whether the group is already queued for an ETA re-push.
    stale_queued: bool,
}

/// Orders non-negative f64 thresholds as u64 keys.
fn key(v: f64) -> u64 {
    v.max(0.0).to_bits()
}

/// Maps any non-NaN f64 to a u64 that orders like the float (negative
/// values included), for use as a heap key.
fn ord_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// An entry in the global ETA heap: the earliest completion of one group,
/// ordered by `(eta, group index)` so ties resolve to the lowest group —
/// the same winner the previous linear scan produced. Entries are validated
/// lazily on pop: one is live only while its group stamp and the global
/// time epoch still match.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EtaEntry {
    ord: u64,
    group: usize,
    eta_bits: u64,
    flow: usize,
    stamp: u32,
    epoch: u64,
}

/// Fluid simulation of concurrent WAN transfers.
///
/// Time does not advance on its own: the owner (the discrete-event engine)
/// calls [`FlowSim::advance_to`] to move the clock forward — draining bytes
/// at the current max-min rates — and uses [`FlowSim::next_completion`] to
/// schedule its next network event. Rates are recomputed lazily whenever the
/// flow set or link capacities change, and incrementally: only the link
/// components touched since the last refresh are refilled.
///
/// Local flows (`src == dst`) complete instantly (zero remaining time), as
/// local reads do not cross the WAN in the paper's model.
///
/// # Examples
///
/// ```
/// use tetrium_net::FlowSim;
/// use tetrium_cluster::SiteId;
///
/// let mut sim = FlowSim::new(vec![1.0, 4.0], vec![4.0, 2.0]);
/// let flow = sim.add_flow(SiteId(0), SiteId(1), 10.0);
/// let (done, t) = sim.next_completion().unwrap();
/// assert_eq!(done, flow);
/// assert!((t - 10.0).abs() < 1e-9); // 10 GB over the 1 GB/s uplink.
/// sim.advance_to(t);
/// assert!(sim.remaining_gb(flow) < 1e-9);
/// ```
#[derive(Debug)]
pub struct FlowSim {
    up_gbps: Vec<f64>,
    down_gbps: Vec<f64>,
    flows: Vec<FlowRec>,
    free: Vec<usize>,
    groups: Vec<Group>,
    group_index: BTreeMap<(usize, usize), usize>,
    /// Group ids with `count > 0`, ascending. Groups whose pair drained
    /// empty stay in the table (their drain clock must survive re-use) but
    /// drop off this list, so long-dead pairs cost nothing per event.
    live: Vec<usize>,
    now: f64,
    total_wan_gb: f64,
    active: usize,
    /// Alive local flows (rarely used; the engine short-circuits local
    /// reads before they reach the WAN model). Removal is a swap_remove,
    /// so the order is not insertion order.
    locals: Vec<usize>,
    dirty: bool,
    /// Persistent waterfilling scratch + dirty-link set.
    wf: Waterfiller,
    /// Global ETA heap over live groups; see [`EtaEntry`].
    eta_heap: BinaryHeap<Reverse<EtaEntry>>,
    /// Bumped whenever `now` changes bitwise: ETAs are computed from
    /// `(now, drained)` and must be re-derived once the clock moves so the
    /// arithmetic matches a from-scratch scan bit for bit.
    time_epoch: u64,
    /// All live groups need fresh ETA entries (set when the clock moves).
    all_stale: bool,
    /// Groups needing an ETA re-push (membership or rate changed).
    stale: Vec<usize>,
    /// Memoized result of [`FlowSim::next_completion`]: completion times are
    /// absolute, so the answer stays valid until the flow set or capacities
    /// change.
    cached_next: Option<Option<(FlowKey, f64)>>,
    /// Observability sink; disabled by default.
    obs: Obs,
    /// A link-utilization sample is owed at the current instant (samples
    /// are deferred to the end of a same-timestamp mutation burst; the sink
    /// coalesces same-instant samples, so one deferred sample equals the
    /// last of the per-mutation ones).
    obs_pending: bool,
    obs_up: Vec<f64>,
    obs_down: Vec<f64>,
}

impl FlowSim {
    /// Creates a simulator over sites with the given link capacities.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or any capacity is
    /// non-positive.
    pub fn new(up_gbps: Vec<f64>, down_gbps: Vec<f64>) -> Self {
        assert_eq!(up_gbps.len(), down_gbps.len());
        assert!(up_gbps.iter().chain(&down_gbps).all(|&c| c > 0.0));
        let n = up_gbps.len();
        Self {
            up_gbps,
            down_gbps,
            flows: Vec::new(),
            free: Vec::new(),
            groups: Vec::new(),
            group_index: BTreeMap::new(),
            live: Vec::new(),
            now: 0.0,
            total_wan_gb: 0.0,
            active: 0,
            locals: Vec::new(),
            dirty: false,
            wf: Waterfiller::new(n),
            eta_heap: BinaryHeap::new(),
            time_epoch: 0,
            all_stale: false,
            stale: Vec::new(),
            cached_next: None,
            obs: Obs::disabled(),
            obs_pending: false,
            obs_up: Vec::new(),
            obs_down: Vec::new(),
        }
    }

    /// Installs an observability sink. The simulator emits per-pair WAN
    /// accounting (including refunds) and a link-utilization sample at
    /// every flow-set or capacity change boundary. Samples are flushed at
    /// the next query or time advance; call [`FlowSim::next_completion`] or
    /// [`FlowSim::link_usage`] before reading the sink if the last event
    /// was a mutation.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Cumulative bytes (GB) that crossed the WAN so far — the WAN-usage
    /// metric of §4.3 (local flows do not count).
    pub fn total_wan_gb(&self) -> f64 {
        self.total_wan_gb
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Bumps a group's ETA generation and queues it for a re-push into the
    /// global heap at the next query.
    fn mark_group_stale(&mut self, g: usize) {
        let grp = &mut self.groups[g];
        grp.eta_stamp = grp.eta_stamp.wrapping_add(1);
        if !grp.stale_queued {
            grp.stale_queued = true;
            self.stale.push(g);
        }
    }

    fn live_insert(&mut self, g: usize) {
        let pos = self.live.partition_point(|&x| x < g);
        self.live.insert(pos, g);
    }

    fn live_remove(&mut self, g: usize) {
        let pos = self.live.partition_point(|&x| x < g);
        debug_assert_eq!(self.live[pos], g);
        self.live.remove(pos);
    }

    /// Starts a transfer of `gb` from `src` to `dst` and returns its handle.
    ///
    /// WAN usage is accounted at start time (the bytes will cross the WAN
    /// unless the flow is cancelled).
    pub fn add_flow(&mut self, src: SiteId, dst: SiteId, gb: f64) -> FlowKey {
        assert!(gb >= 0.0 && gb.is_finite());
        let local = src == dst;
        if !local {
            self.total_wan_gb += gb;
            self.obs.wan_transfer(src, dst, gb);
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.flows.push(FlowRec {
                size_gb: 0.0,
                group: None,
                join_drain: 0.0,
                local_pos: 0,
                alive: false,
            });
            self.flows.len() - 1
        });
        let (group, join_drain, local_pos) = if local {
            let pos = self.locals.len();
            self.locals.push(idx);
            self.cached_next = None;
            (None, 0.0, pos)
        } else {
            let g = *self
                .group_index
                .entry((src.index(), dst.index()))
                .or_insert_with(|| {
                    self.groups.push(Group {
                        src: src.index(),
                        dst: dst.index(),
                        count: 0,
                        rate: 0.0,
                        drained: 0.0,
                        heap: BinaryHeap::new(),
                        eta_stamp: 0,
                        stale_queued: false,
                    });
                    self.groups.len() - 1
                });
            let grp = &mut self.groups[g];
            grp.count += 1;
            grp.heap.push(Reverse((key(grp.drained + gb), idx)));
            let join = grp.drained;
            if grp.count == 1 {
                self.live_insert(g);
            }
            self.mark_group_stale(g);
            self.wf.mark_pair_dirty(src.index(), dst.index());
            self.dirty = true;
            self.cached_next = None;
            (Some(g), join, 0)
        };
        self.flows[idx] = FlowRec {
            size_gb: gb,
            group,
            join_drain,
            local_pos,
            alive: true,
        };
        self.active += 1;
        if !local && self.obs.is_enabled() {
            self.obs_pending = true;
        }
        FlowKey(idx)
    }

    /// Removes a completed (or cancelled) flow.
    ///
    /// Returns the bytes that were still unsent (exactly zero for a
    /// completed flow: the group drain clock accumulates `rate * dt`
    /// increments, so a flow removed at its completion time can be left
    /// with a float-drift remainder; refunding that from `total_wan_gb`
    /// would leak bytes out of the conservation ledger, so sub-epsilon
    /// remainders are clamped to zero before the refund).
    pub fn remove_flow(&mut self, fkey: FlowKey) -> f64 {
        let size = self.flows[fkey.0].size_gb;
        let mut remaining = self.remaining_gb(fkey);
        if remaining < 1e-9 * (1.0 + size) {
            remaining = 0.0;
        }
        let rec = &mut self.flows[fkey.0];
        assert!(rec.alive, "flow already removed");
        rec.alive = false;
        self.cached_next = None;
        match rec.group {
            Some(g) => {
                self.groups[g].count -= 1;
                // Heap entries are discarded lazily when popped.
                if self.groups[g].count == 0 {
                    self.live_remove(g);
                }
                self.mark_group_stale(g);
                let (src, dst) = (self.groups[g].src, self.groups[g].dst);
                self.wf.mark_pair_dirty(src, dst);
                self.dirty = true;
                // Refund WAN accounting for unsent bytes of a cancelled flow.
                self.total_wan_gb -= remaining;
                if remaining > 0.0 {
                    self.obs.wan_transfer(SiteId(src), SiteId(dst), -remaining);
                }
                if self.obs.is_enabled() {
                    self.obs_pending = true;
                }
            }
            None => {
                let pos = self.flows[fkey.0].local_pos;
                self.locals.swap_remove(pos);
                if pos < self.locals.len() {
                    let moved = self.locals[pos];
                    self.flows[moved].local_pos = pos;
                }
            }
        }
        self.free.push(fkey.0);
        self.active -= 1;
        remaining
    }

    /// Updates a site's link capacities (resource dynamics, §4.2).
    ///
    /// Zero is allowed and models a full link outage: flows bottlenecked on
    /// the zeroed link get rate 0 from the waterfiller and become
    /// *stalled* — they keep their drained progress but are excluded from
    /// [`FlowSim::next_completion`] (no infinite/NaN ETA is ever produced),
    /// so the engine never busy-loops on them. Restoring a positive
    /// capacity later resumes the stalled flows from where they stopped.
    /// Construction ([`FlowSim::new`]) still requires positive capacities:
    /// only mid-run dynamics may zero a link.
    pub fn set_capacity(&mut self, site: SiteId, up_gbps: f64, down_gbps: f64) {
        assert!(up_gbps >= 0.0 && down_gbps >= 0.0 && up_gbps.is_finite() && down_gbps.is_finite());
        self.up_gbps[site.index()] = up_gbps;
        self.down_gbps[site.index()] = down_gbps;
        self.wf.mark_pair_dirty(site.index(), site.index());
        self.dirty = true;
        self.cached_next = None;
        if self.obs.is_enabled() {
            self.obs_pending = true;
        }
    }

    /// Advances the clock to `t`, draining every flow at its current rate.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.now - 1e-9, "time must be monotone");
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            // The owed sample belongs to the instant the mutations happened
            // at, so flush before moving the clock.
            self.flush_link_sample();
            self.refresh();
            for &g in &self.live {
                let grp = &mut self.groups[g];
                if grp.rate > 0.0 {
                    grp.drained += grp.rate * dt;
                }
            }
            self.time_epoch += 1;
            self.all_stale = true;
        } else if t.to_bits() != self.now.to_bits() {
            // The clock value changed bitwise (a sub-epsilon step backwards
            // or across the zero signs): ETAs derive from `now`, so they
            // must be recomputed to stay bit-exact.
            self.time_epoch += 1;
            self.all_stale = true;
        }
        self.now = t;
    }

    /// The earliest valid ETA entry for group `g` (validating the group's
    /// threshold heap lazily), or `None` when the group has no runnable
    /// member at a positive rate.
    fn group_entry(&mut self, g: usize) -> Option<EtaEntry> {
        // Discard heap entries of removed flows or stale re-additions.
        let (threshold, idx) = loop {
            let &Reverse((th, idx)) = self.groups[g].heap.peek()?;
            let f = &self.flows[idx];
            let valid = f.alive && f.group == Some(g) && key(f.join_drain + f.size_gb) == th;
            if valid {
                break (th, idx);
            }
            self.groups[g].heap.pop();
        };
        let grp = &self.groups[g];
        let remaining = (f64::from_bits(threshold) - grp.drained).max(0.0);
        let eta = if remaining <= 1e-12 {
            self.now
        } else if grp.rate <= 0.0 {
            // Stalled: the group sits on a zeroed link (`set_capacity` with
            // 0 during an outage). No finite ETA exists; the group rejoins
            // the completion heap when a capacity change restores its rate.
            return None;
        } else {
            self.now + remaining / grp.rate
        };
        Some(EtaEntry {
            ord: ord_key(eta),
            group: g,
            eta_bits: eta.to_bits(),
            flow: idx,
            stamp: grp.eta_stamp,
            epoch: self.time_epoch,
        })
    }

    /// The earliest `(flow, absolute completion time)` among in-flight flows
    /// at current rates, or `None` when no flows are active.
    ///
    /// Local flows and zero-byte flows complete "now".
    pub fn next_completion(&mut self) -> Option<(FlowKey, f64)> {
        if let Some(cached) = self.cached_next {
            return cached;
        }
        self.flush_link_sample();
        self.refresh();
        // Local flows (no group) complete immediately.
        if let Some(&i) = self.locals.first() {
            return Some((FlowKey(i), self.now));
        }
        if self.all_stale {
            // The clock moved: every ETA must be re-derived. Rebuild the
            // heap in one O(live) heapify, reusing its buffer.
            self.all_stale = false;
            for g in std::mem::take(&mut self.stale) {
                // (the Vec keeps its capacity through take+restore below)
                self.groups[g].stale_queued = false;
            }
            let mut buf = std::mem::take(&mut self.eta_heap).into_vec();
            buf.clear();
            for i in 0..self.live.len() {
                let g = self.live[i];
                if let Some(e) = self.group_entry(g) {
                    buf.push(Reverse(e));
                }
            }
            self.eta_heap = BinaryHeap::from(buf);
        } else {
            while let Some(g) = self.stale.pop() {
                self.groups[g].stale_queued = false;
                if self.groups[g].count == 0 {
                    continue;
                }
                if let Some(e) = self.group_entry(g) {
                    self.eta_heap.push(Reverse(e));
                }
            }
        }
        // Pop superseded entries until the top is current; it stays in the
        // heap for future queries.
        let best = loop {
            let Some(Reverse(e)) = self.eta_heap.peek() else {
                break None;
            };
            if e.epoch == self.time_epoch && e.stamp == self.groups[e.group].eta_stamp {
                break Some((FlowKey(e.flow), f64::from_bits(e.eta_bits)));
            }
            self.eta_heap.pop();
        };
        self.cached_next = Some(best);
        best
    }

    /// Remaining volume of a flow in GB (zero for local flows, which never
    /// queue).
    pub fn remaining_gb(&self, fkey: FlowKey) -> f64 {
        let f = &self.flows[fkey.0];
        assert!(f.alive, "flow was removed");
        match f.group {
            None => 0.0,
            Some(g) => (f.join_drain + f.size_gb - self.groups[g].drained).max(0.0),
        }
    }

    /// Current rate of a flow in GB/s (`f64::INFINITY` for local flows).
    pub fn rate_gbps(&mut self, fkey: FlowKey) -> f64 {
        self.refresh();
        let f = &self.flows[fkey.0];
        assert!(f.alive, "flow was removed");
        match f.group {
            None => f64::INFINITY,
            Some(g) => self.groups[g].rate,
        }
    }

    /// Aggregate rate currently allocated on each site's uplink and
    /// downlink, in GB/s — the basis for available-bandwidth estimation
    /// (paper §5). Local flows consume nothing.
    pub fn link_usage(&mut self) -> (Vec<f64>, Vec<f64>) {
        let n = self.up_gbps.len();
        let mut up = Vec::with_capacity(n);
        let mut down = Vec::with_capacity(n);
        self.link_usage_into(&mut up, &mut down);
        (up, down)
    }

    /// Allocation-free variant of [`FlowSim::link_usage`]: clears and fills
    /// the caller's buffers so a hot caller can reuse their capacity.
    pub fn link_usage_into(&mut self, up: &mut Vec<f64>, down: &mut Vec<f64>) {
        self.flush_link_sample();
        self.refresh();
        self.fill_usage(up, down);
    }

    /// Sums live-group rates into the buffers (ascending group order — the
    /// accumulation order is part of the bit-exact contract).
    fn fill_usage(&self, up: &mut Vec<f64>, down: &mut Vec<f64>) {
        let n = self.up_gbps.len();
        up.clear();
        up.resize(n, 0.0);
        down.clear();
        down.resize(n, 0.0);
        for &gi in &self.live {
            let g = &self.groups[gi];
            up[g.src] += g.rate * g.count as f64;
            down[g.dst] += g.rate * g.count as f64;
        }
    }

    /// Emits the owed per-link utilization sample, if any. Deferring to the
    /// end of a same-timestamp mutation burst is invisible in the sink
    /// (same-instant samples coalesce to the last one) and means one rate
    /// refresh per burst instead of one per mutation.
    fn flush_link_sample(&mut self) {
        if !self.obs_pending {
            return;
        }
        self.obs_pending = false;
        self.refresh();
        let mut up = std::mem::take(&mut self.obs_up);
        let mut down = std::mem::take(&mut self.obs_down);
        self.fill_usage(&mut up, &mut down);
        self.obs.link_sample(self.now, &up, &down);
        self.obs_up = up;
        self.obs_down = down;
    }

    /// Recomputes the rates of groups in mutated link components if any
    /// mutation happened since the last refresh; untouched components keep
    /// their (still exact) rates.
    fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let groups = &self.groups;
        self.wf.refill(
            &self.live,
            |g| {
                let gr = &groups[g];
                (gr.src, gr.dst, gr.count)
            },
            &self.up_gbps,
            &self.down_gbps,
        );
        for i in 0..self.wf.refilled().len() {
            let (g, r) = self.wf.refilled()[i];
            if self.groups[g].rate.to_bits() != r.to_bits() {
                self.groups[g].rate = r;
                self.mark_group_stale(g);
            }
        }
    }
}

#[cfg(feature = "audit")]
impl FlowSim {
    /// Audit-mode invariant check (feature `audit`, DESIGN.md §10): re-checks
    /// the simulator's incremental state against from-scratch oracles and
    /// panics with full context on any violation.
    ///
    /// Invariants:
    /// 1. Every live group's per-flow rate is **bit-exact** equal to a
    ///    from-scratch [`crate::waterfill_groups`] over the same groups and
    ///    capacities (the dirty-component refill contract).
    /// 2. Per-link conservation: Σ (rate × count) over groups crossing a
    ///    link never exceeds its capacity (tiny relative tolerance for the
    ///    summation order).
    /// 3. Per-flow byte conservation: for every alive WAN flow,
    ///    `sent + remaining == size` with `0 ≤ sent ≤ size` up to float
    ///    drift, where `sent = group.drained − join_drain` (drain clocks are
    ///    monotone, so a violation means bytes were created or destroyed).
    /// 4. Bookkeeping consistency: group member counts match the alive flow
    ///    records, the live list is exactly the non-empty groups in
    ///    ascending order, and `active` counts the alive flows.
    pub fn audit(&mut self, ctx: &str) {
        self.refresh();
        let n = self.up_gbps.len();

        // 1. Rates vs the stateless oracle, bit for bit.
        let specs: Vec<crate::GroupSpec> = self
            .groups
            .iter()
            .map(|g| crate::GroupSpec {
                src: g.src,
                dst: g.dst,
                count: g.count,
            })
            .collect();
        let oracle = crate::waterfill_groups(&specs, &self.up_gbps, &self.down_gbps);
        for &g in &self.live {
            let gr = &self.groups[g];
            assert!(
                gr.rate.to_bits() == oracle[g].to_bits(),
                "audit[{ctx}]: group {g} ({}->{}, count {}) incremental rate \
                 {:?} != from-scratch waterfill {:?} at t={}",
                gr.src,
                gr.dst,
                gr.count,
                gr.rate,
                oracle[g],
                self.now
            );
        }

        // 2. Per-link conservation.
        let mut up_used = vec![0.0f64; n];
        let mut down_used = vec![0.0f64; n];
        for &g in &self.live {
            let gr = &self.groups[g];
            let total = gr.rate * gr.count as f64;
            up_used[gr.src] += total;
            down_used[gr.dst] += total;
        }
        for s in 0..n {
            assert!(
                up_used[s] <= self.up_gbps[s] * (1.0 + 1e-9) + 1e-12,
                "audit[{ctx}]: uplink {s} oversubscribed: {} > cap {} at t={}",
                up_used[s],
                self.up_gbps[s],
                self.now
            );
            assert!(
                down_used[s] <= self.down_gbps[s] * (1.0 + 1e-9) + 1e-12,
                "audit[{ctx}]: downlink {s} oversubscribed: {} > cap {} at t={}",
                down_used[s],
                self.down_gbps[s],
                self.now
            );
        }

        // 3. Per-flow byte conservation.
        for (i, f) in self.flows.iter().enumerate() {
            if !f.alive {
                continue;
            }
            let Some(g) = f.group else { continue };
            let sent = self.groups[g].drained - f.join_drain;
            let tol = 1e-6 * (1.0 + f.size_gb);
            assert!(
                sent >= -tol,
                "audit[{ctx}]: flow {i} drained backwards (sent {sent}) at t={}",
                self.now
            );
            assert!(
                sent <= f.size_gb + tol,
                "audit[{ctx}]: flow {i} overshot its size: sent {sent} of \
                 {} GB (group {g} drained {}, joined at {}) at t={}",
                f.size_gb,
                self.groups[g].drained,
                f.join_drain,
                self.now
            );
        }

        // 4. Bookkeeping consistency.
        let mut member_counts = vec![0usize; self.groups.len()];
        let mut alive = 0usize;
        for f in &self.flows {
            if f.alive {
                alive += 1;
                if let Some(g) = f.group {
                    member_counts[g] += 1;
                }
            }
        }
        assert!(
            alive == self.active,
            "audit[{ctx}]: active counter {} != alive flow records {alive}",
            self.active
        );
        for (g, gr) in self.groups.iter().enumerate() {
            assert!(
                gr.count == member_counts[g],
                "audit[{ctx}]: group {g} count {} != alive members {}",
                gr.count,
                member_counts[g]
            );
        }
        let expect_live: Vec<usize> = (0..self.groups.len())
            .filter(|&g| self.groups[g].count > 0)
            .collect();
        assert!(
            self.live == expect_live,
            "audit[{ctx}]: live list {:?} != non-empty groups {:?}",
            self.live,
            expect_live
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the audit oracle across the simulator's full lifecycle —
    /// adds, drains, removals, capacity changes including a zero-capacity
    /// outage — proving the incremental state matches the from-scratch
    /// waterfill at every step (and that the oracle tolerates zeroed links).
    #[cfg(feature = "audit")]
    #[test]
    fn audit_passes_through_churn_and_outage() {
        let mut sim = FlowSim::new(vec![2.0, 9.0, 3.0], vec![9.0, 4.0, 9.0]);
        sim.audit("empty");
        let a = sim.add_flow(SiteId(0), SiteId(1), 4.0);
        let b = sim.add_flow(SiteId(0), SiteId(2), 8.0);
        let c = sim.add_flow(SiteId(2), SiteId(1), 6.0);
        sim.audit("after adds");
        let (_, t) = sim.next_completion().unwrap();
        sim.advance_to(t * 0.5);
        sim.audit("mid drain");
        sim.set_capacity(SiteId(0), 0.0, 0.0); // outage
        sim.audit("outage");
        sim.advance_to(t * 0.75);
        sim.remove_flow(c);
        sim.audit("removal during outage");
        sim.set_capacity(SiteId(0), 5.0, 5.0); // recovery
        sim.audit("recovery");
        while let Some((k, t)) = sim.next_completion() {
            sim.advance_to(t);
            sim.remove_flow(k);
            sim.audit("drain to empty");
        }
        assert!(sim.active_flows() == 0);
        let _ = (a, b);
    }

    #[test]
    fn single_transfer_finishes_at_bottleneck_time() {
        let mut sim = FlowSim::new(vec![1.0, 4.0], vec![4.0, 2.0]);
        let k = sim.add_flow(SiteId(0), SiteId(1), 10.0);
        let (kk, t) = sim.next_completion().unwrap();
        assert_eq!(kk, k);
        assert!((t - 10.0).abs() < 1e-9); // Uplink 1 GB/s is the bottleneck.
        sim.advance_to(t);
        assert!(sim.remaining_gb(k) < 1e-9);
        assert!((sim.total_wan_gb() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn competing_flows_slow_each_other_then_speed_up() {
        let mut sim = FlowSim::new(vec![2.0, 9.0, 9.0], vec![9.0; 3]);
        let a = sim.add_flow(SiteId(0), SiteId(1), 4.0);
        let b = sim.add_flow(SiteId(0), SiteId(2), 8.0);
        // Shared uplink 2 GB/s -> 1 GB/s each; flow a completes at t=4.
        let (first, t1) = sim.next_completion().unwrap();
        assert_eq!(first, a);
        assert!((t1 - 4.0).abs() < 1e-9);
        sim.advance_to(t1);
        sim.remove_flow(a);
        // Flow b has 4 GB left and now gets the full 2 GB/s: +2 s.
        let (second, t2) = sim.next_completion().unwrap();
        assert_eq!(second, b);
        assert!((t2 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn same_pair_flows_share_and_complete_in_size_order() {
        let mut sim = FlowSim::new(vec![2.0, 2.0], vec![2.0, 2.0]);
        let small = sim.add_flow(SiteId(0), SiteId(1), 1.0);
        let big = sim.add_flow(SiteId(0), SiteId(1), 3.0);
        // Each gets 1 GB/s; small finishes at t=1.
        let (first, t1) = sim.next_completion().unwrap();
        assert_eq!(first, small);
        assert!((t1 - 1.0).abs() < 1e-9);
        sim.advance_to(t1);
        sim.remove_flow(small);
        // Big has 2 GB left at the full 2 GB/s.
        let (second, t2) = sim.next_completion().unwrap();
        assert_eq!(second, big);
        assert!((t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn local_flow_completes_immediately_and_costs_no_wan() {
        let mut sim = FlowSim::new(vec![1.0], vec![1.0]);
        let k = sim.add_flow(SiteId(0), SiteId(0), 100.0);
        let (kk, t) = sim.next_completion().unwrap();
        assert_eq!(kk, k);
        assert_eq!(t, 0.0);
        assert_eq!(sim.total_wan_gb(), 0.0);
    }

    #[test]
    fn local_flow_removal_is_positional() {
        // Three local flows; removing the first must keep the other two
        // alive and resolvable (swap_remove repositions the moved entry).
        let mut sim = FlowSim::new(vec![1.0], vec![1.0]);
        let a = sim.add_flow(SiteId(0), SiteId(0), 1.0);
        let b = sim.add_flow(SiteId(0), SiteId(0), 1.0);
        let c = sim.add_flow(SiteId(0), SiteId(0), 1.0);
        sim.remove_flow(a);
        assert_eq!(sim.active_flows(), 2);
        let (k1, _) = sim.next_completion().unwrap();
        sim.remove_flow(k1);
        let (k2, _) = sim.next_completion().unwrap();
        sim.remove_flow(k2);
        assert!(sim.next_completion().is_none());
        assert!([b, c].contains(&k1) && [b, c].contains(&k2) && k1 != k2);
    }

    #[test]
    fn cancelling_a_flow_refunds_wan_accounting() {
        let mut sim = FlowSim::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        let k = sim.add_flow(SiteId(0), SiteId(1), 10.0);
        sim.advance_to(2.0);
        let unsent = sim.remove_flow(k);
        assert!((unsent - 8.0).abs() < 1e-9);
        assert!((sim.total_wan_gb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_drop_slows_flows() {
        let mut sim = FlowSim::new(vec![4.0, 9.0], vec![9.0, 9.0]);
        let k = sim.add_flow(SiteId(0), SiteId(1), 8.0);
        sim.advance_to(1.0); // 4 GB sent, 4 left.
        sim.set_capacity(SiteId(0), 1.0, 9.0);
        let (_, t) = sim.next_completion().unwrap();
        assert!((t - 5.0).abs() < 1e-9); // 4 GB at 1 GB/s from t=1.
        assert!((sim.rate_gbps(k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn key_reuse_is_safe() {
        let mut sim = FlowSim::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        let a = sim.add_flow(SiteId(0), SiteId(1), 1.0);
        sim.advance_to(1.0);
        sim.remove_flow(a);
        let b = sim.add_flow(SiteId(1), SiteId(0), 2.0);
        assert_eq!(sim.active_flows(), 1);
        assert!((sim.remaining_gb(b) - 2.0).abs() < 1e-9);
    }

    /// Once a pair's group drains empty it leaves the live list; re-adding
    /// flows on the pair (and on others) must still produce completions in
    /// exact ETA order, and the long-dead pair must not resurface.
    #[test]
    fn completion_order_is_unchanged_after_group_pruning() {
        let mut sim = FlowSim::new(vec![2.0; 3], vec![2.0; 3]);
        // Round 1: drain pair (0,1) to empty so its group goes dormant.
        let a = sim.add_flow(SiteId(0), SiteId(1), 2.0);
        let (ka, ta) = sim.next_completion().unwrap();
        assert_eq!(ka, a);
        sim.advance_to(ta);
        sim.remove_flow(a);
        assert!(sim.next_completion().is_none());
        // Round 2: flows on (1,2) and the revived (0,1); sizes chosen so
        // the revived pair finishes second. The (0,1) drain clock kept its
        // round-1 value, so remaining bytes must still resolve exactly.
        let b = sim.add_flow(SiteId(1), SiteId(2), 2.0);
        let c = sim.add_flow(SiteId(0), SiteId(1), 4.0);
        let (kb, tb) = sim.next_completion().unwrap();
        assert_eq!(kb, b);
        assert!((tb - 2.0).abs() < 1e-9); // 2 GB at 2 GB/s from t=1.
        sim.advance_to(tb);
        sim.remove_flow(b);
        let (kc, tc) = sim.next_completion().unwrap();
        assert_eq!(kc, c);
        assert!((tc - 3.0).abs() < 1e-9);
        sim.advance_to(tc);
        assert_eq!(sim.remove_flow(c), 0.0);
    }

    /// Drains `n` flows over `sites` sites to completion, asserting exact
    /// byte conservation: every completed flow must be removed with exactly
    /// zero remaining (the drift clamp in `remove_flow`), and the ledger
    /// must come back to the sum of sizes within 1e-9.
    fn drain_and_conserve(n: usize, sites: usize) {
        let mut sim = FlowSim::new(vec![1.0; sites], vec![1.0; sites]);
        let mut expected = 0.0;
        for i in 0..n {
            let src = i % sites;
            let dst = (i + 1 + i / sites) % sites;
            let gb = 0.1 + (i % 7) as f64 * 0.05;
            if src != dst {
                expected += gb;
            }
            sim.add_flow(SiteId(src), SiteId(dst), gb);
        }
        let mut done = 0;
        while let Some((k, t)) = sim.next_completion() {
            sim.advance_to(t);
            let rem = sim.remove_flow(k);
            assert_eq!(rem, 0.0, "completed flow removed with {rem} GB left");
            done += 1;
        }
        assert_eq!(done, n);
        assert!(
            (sim.total_wan_gb() - expected).abs() < 1e-9,
            "ledger {} vs expected {expected}",
            sim.total_wan_gb()
        );
    }

    #[test]
    fn many_flows_scale_and_conserve_bytes() {
        // A stress shape: 200 flows across 4 sites; drain to completion and
        // verify every flow finishes with total WAN equal to the bytes sent.
        drain_and_conserve(200, 4);
    }

    #[test]
    fn ten_thousand_flows_conserve_bytes_exactly() {
        // Drift accumulates with the number of rate recomputations, so the
        // 200-flow shape alone would not catch a leaky remainder refund.
        drain_and_conserve(10_000, 8);
    }

    #[test]
    fn obs_records_wan_pairs_and_link_samples() {
        let obs = Obs::recording(vec![1, 1]);
        let mut sim = FlowSim::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        sim.set_obs(obs.clone());
        let k = sim.add_flow(SiteId(0), SiteId(1), 10.0);
        sim.advance_to(2.0);
        sim.remove_flow(k); // Cancelled: 8 GB refunded.
        sim.next_completion(); // Flush the sample owed for the removal.
        let r = obs.finish().unwrap();
        assert!((r.wan_pair(SiteId(0), SiteId(1)) - 2.0).abs() < 1e-9);
        assert!((r.total_wan_gb() - sim.total_wan_gb()).abs() < 1e-12);
        // One sample at add (t=0), one at remove (t=2).
        assert_eq!(r.link_timeline.len(), 2);
        assert!((r.link_timeline[0].up[0] - 1.0).abs() < 1e-12);
        assert_eq!(r.link_timeline[1].up[0], 0.0);
    }
}
