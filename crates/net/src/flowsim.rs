//! Fluid-flow simulator over the max-min fair model.
//!
//! Flows between the same `(src, dst)` pair always share one max-min rate,
//! so the simulator keeps them in per-pair *groups*. Each group carries a
//! virtual drain clock (`drained`: bytes sent per member flow since the
//! group was created); a flow joining at drain level `d` with `size` bytes
//! completes when the clock reaches `d + size`. Advancing time is then
//! `O(groups)`, finding the next completion is `O(groups · log)`, and rate
//! recomputation is one heap-based waterfilling pass — independent of the
//! number of concurrent flows, which is what keeps shuffle-heavy
//! simulations (thousands of tasks × dozens of sources) tractable.

use crate::maxmin::{waterfill_groups, GroupSpec};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tetrium_cluster::SiteId;
use tetrium_obs::Obs;

/// Handle to a flow inside a [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(usize);

#[derive(Debug, Clone)]
struct FlowRec {
    size_gb: f64,
    /// Group the flow belongs to (`None` for local flows).
    group: Option<usize>,
    /// Group drain level when the flow joined.
    join_drain: f64,
    alive: bool,
}

#[derive(Debug)]
struct Group {
    src: usize,
    dst: usize,
    count: usize,
    /// Current per-flow rate in GB/s.
    rate: f64,
    /// Bytes drained per member flow since group creation.
    drained: f64,
    /// Completion thresholds `(join_drain + size, flow index)`, min-first;
    /// entries for removed flows are discarded lazily.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

/// Orders non-negative f64 thresholds as u64 keys.
fn key(v: f64) -> u64 {
    v.max(0.0).to_bits()
}

/// Fluid simulation of concurrent WAN transfers.
///
/// Time does not advance on its own: the owner (the discrete-event engine)
/// calls [`FlowSim::advance_to`] to move the clock forward — draining bytes
/// at the current max-min rates — and uses [`FlowSim::next_completion`] to
/// schedule its next network event. Rates are recomputed lazily whenever the
/// flow set or link capacities change.
///
/// Local flows (`src == dst`) complete instantly (zero remaining time), as
/// local reads do not cross the WAN in the paper's model.
///
/// # Examples
///
/// ```
/// use tetrium_net::FlowSim;
/// use tetrium_cluster::SiteId;
///
/// let mut sim = FlowSim::new(vec![1.0, 4.0], vec![4.0, 2.0]);
/// let flow = sim.add_flow(SiteId(0), SiteId(1), 10.0);
/// let (done, t) = sim.next_completion().unwrap();
/// assert_eq!(done, flow);
/// assert!((t - 10.0).abs() < 1e-9); // 10 GB over the 1 GB/s uplink.
/// sim.advance_to(t);
/// assert!(sim.remaining_gb(flow) < 1e-9);
/// ```
#[derive(Debug)]
pub struct FlowSim {
    up_gbps: Vec<f64>,
    down_gbps: Vec<f64>,
    flows: Vec<FlowRec>,
    free: Vec<usize>,
    groups: Vec<Group>,
    group_index: HashMap<(usize, usize), usize>,
    now: f64,
    total_wan_gb: f64,
    active: usize,
    /// Alive local flows (rarely used; the engine short-circuits local
    /// reads before they reach the WAN model).
    locals: Vec<usize>,
    dirty: bool,
    /// Memoized result of [`FlowSim::next_completion`]: completion times are
    /// absolute, so the answer stays valid until the flow set or capacities
    /// change.
    cached_next: Option<Option<(FlowKey, f64)>>,
    /// Observability sink; disabled by default.
    obs: Obs,
}

impl FlowSim {
    /// Creates a simulator over sites with the given link capacities.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or any capacity is
    /// non-positive.
    pub fn new(up_gbps: Vec<f64>, down_gbps: Vec<f64>) -> Self {
        assert_eq!(up_gbps.len(), down_gbps.len());
        assert!(up_gbps.iter().chain(&down_gbps).all(|&c| c > 0.0));
        Self {
            up_gbps,
            down_gbps,
            flows: Vec::new(),
            free: Vec::new(),
            groups: Vec::new(),
            group_index: HashMap::new(),
            now: 0.0,
            total_wan_gb: 0.0,
            active: 0,
            locals: Vec::new(),
            dirty: false,
            cached_next: None,
            obs: Obs::disabled(),
        }
    }

    /// Installs an observability sink. The simulator emits per-pair WAN
    /// accounting (including refunds) and a link-utilization sample at
    /// every flow-set or capacity change boundary.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Cumulative bytes (GB) that crossed the WAN so far — the WAN-usage
    /// metric of §4.3 (local flows do not count).
    pub fn total_wan_gb(&self) -> f64 {
        self.total_wan_gb
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Starts a transfer of `gb` from `src` to `dst` and returns its handle.
    ///
    /// WAN usage is accounted at start time (the bytes will cross the WAN
    /// unless the flow is cancelled).
    pub fn add_flow(&mut self, src: SiteId, dst: SiteId, gb: f64) -> FlowKey {
        assert!(gb >= 0.0 && gb.is_finite());
        let local = src == dst;
        if !local {
            self.total_wan_gb += gb;
            self.obs.wan_transfer(src, dst, gb);
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.flows.push(FlowRec {
                size_gb: 0.0,
                group: None,
                join_drain: 0.0,
                alive: false,
            });
            self.flows.len() - 1
        });
        let (group, join_drain) = if local {
            self.locals.push(idx);
            self.cached_next = None;
            (None, 0.0)
        } else {
            let g = *self
                .group_index
                .entry((src.index(), dst.index()))
                .or_insert_with(|| {
                    self.groups.push(Group {
                        src: src.index(),
                        dst: dst.index(),
                        count: 0,
                        rate: 0.0,
                        drained: 0.0,
                        heap: BinaryHeap::new(),
                    });
                    self.groups.len() - 1
                });
            let grp = &mut self.groups[g];
            grp.count += 1;
            grp.heap.push(Reverse((key(grp.drained + gb), idx)));
            self.dirty = true;
            self.cached_next = None;
            (Some(g), grp.drained)
        };
        self.flows[idx] = FlowRec {
            size_gb: gb,
            group,
            join_drain,
            alive: true,
        };
        self.active += 1;
        if !local {
            self.emit_link_sample();
        }
        FlowKey(idx)
    }

    /// Removes a completed (or cancelled) flow.
    ///
    /// Returns the bytes that were still unsent (exactly zero for a
    /// completed flow: the group drain clock accumulates `rate * dt`
    /// increments, so a flow removed at its completion time can be left
    /// with a float-drift remainder; refunding that from `total_wan_gb`
    /// would leak bytes out of the conservation ledger, so sub-epsilon
    /// remainders are clamped to zero before the refund).
    pub fn remove_flow(&mut self, fkey: FlowKey) -> f64 {
        let size = self.flows[fkey.0].size_gb;
        let mut remaining = self.remaining_gb(fkey);
        if remaining < 1e-9 * (1.0 + size) {
            remaining = 0.0;
        }
        let rec = &mut self.flows[fkey.0];
        assert!(rec.alive, "flow already removed");
        rec.alive = false;
        self.cached_next = None;
        match rec.group {
            Some(g) => {
                self.groups[g].count -= 1;
                // Heap entries are discarded lazily when popped.
                self.dirty = true;
                // Refund WAN accounting for unsent bytes of a cancelled flow.
                self.total_wan_gb -= remaining;
                if remaining > 0.0 {
                    let (src, dst) = (self.groups[g].src, self.groups[g].dst);
                    self.obs.wan_transfer(SiteId(src), SiteId(dst), -remaining);
                }
                self.emit_link_sample();
            }
            None => self.locals.retain(|&i| i != fkey.0),
        }
        self.free.push(fkey.0);
        self.active -= 1;
        remaining
    }

    /// Updates a site's link capacities (resource dynamics, §4.2).
    pub fn set_capacity(&mut self, site: SiteId, up_gbps: f64, down_gbps: f64) {
        assert!(up_gbps > 0.0 && down_gbps > 0.0);
        self.up_gbps[site.index()] = up_gbps;
        self.down_gbps[site.index()] = down_gbps;
        self.dirty = true;
        self.cached_next = None;
        self.emit_link_sample();
    }

    /// Advances the clock to `t`, draining every flow at its current rate.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.now - 1e-9, "time must be monotone");
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            self.refresh();
            for g in &mut self.groups {
                if g.count > 0 && g.rate > 0.0 {
                    g.drained += g.rate * dt;
                }
            }
        }
        self.now = t;
    }

    /// The earliest `(flow, absolute completion time)` among in-flight flows
    /// at current rates, or `None` when no flows are active.
    ///
    /// Local flows and zero-byte flows complete "now".
    pub fn next_completion(&mut self) -> Option<(FlowKey, f64)> {
        if let Some(cached) = self.cached_next {
            return cached;
        }
        self.refresh();
        let mut best: Option<(FlowKey, f64)> = None;
        // Local flows (no group) complete immediately.
        if let Some(&i) = self.locals.first() {
            return Some((FlowKey(i), self.now));
        }
        for g in 0..self.groups.len() {
            // Discard heap entries of removed flows or stale re-additions.
            let (threshold, idx) = loop {
                let Some(&Reverse((th, idx))) = self.groups[g].heap.peek() else {
                    break (u64::MAX, usize::MAX);
                };
                let f = &self.flows[idx];
                let valid = f.alive && f.group == Some(g) && key(f.join_drain + f.size_gb) == th;
                if valid {
                    break (th, idx);
                }
                self.groups[g].heap.pop();
            };
            if idx == usize::MAX {
                continue;
            }
            let grp = &self.groups[g];
            let remaining = (f64::from_bits(threshold) - grp.drained).max(0.0);
            let eta = if remaining <= 1e-12 {
                self.now
            } else if grp.rate <= 0.0 {
                continue; // Stalled (cannot happen with positive capacities).
            } else {
                self.now + remaining / grp.rate
            };
            if best.is_none_or(|(_, t)| eta < t) {
                best = Some((FlowKey(idx), eta));
            }
        }
        self.cached_next = Some(best);
        best
    }

    /// Remaining volume of a flow in GB (zero for local flows, which never
    /// queue).
    pub fn remaining_gb(&self, fkey: FlowKey) -> f64 {
        let f = &self.flows[fkey.0];
        assert!(f.alive, "flow was removed");
        match f.group {
            None => 0.0,
            Some(g) => (f.join_drain + f.size_gb - self.groups[g].drained).max(0.0),
        }
    }

    /// Current rate of a flow in GB/s (`f64::INFINITY` for local flows).
    pub fn rate_gbps(&mut self, fkey: FlowKey) -> f64 {
        self.refresh();
        let f = &self.flows[fkey.0];
        assert!(f.alive, "flow was removed");
        match f.group {
            None => f64::INFINITY,
            Some(g) => self.groups[g].rate,
        }
    }

    /// Aggregate rate currently allocated on each site's uplink and
    /// downlink, in GB/s — the basis for available-bandwidth estimation
    /// (paper §5). Local flows consume nothing.
    pub fn link_usage(&mut self) -> (Vec<f64>, Vec<f64>) {
        let n = self.up_gbps.len();
        let mut up = Vec::with_capacity(n);
        let mut down = Vec::with_capacity(n);
        self.link_usage_into(&mut up, &mut down);
        (up, down)
    }

    /// Allocation-free variant of [`FlowSim::link_usage`]: clears and fills
    /// the caller's buffers so a hot caller can reuse their capacity.
    pub fn link_usage_into(&mut self, up: &mut Vec<f64>, down: &mut Vec<f64>) {
        self.refresh();
        let n = self.up_gbps.len();
        up.clear();
        up.resize(n, 0.0);
        down.clear();
        down.resize(n, 0.0);
        for g in &self.groups {
            if g.count > 0 {
                up[g.src] += g.rate * g.count as f64;
                down[g.dst] += g.rate * g.count as f64;
            }
        }
    }

    /// Emits a per-link utilization sample at the current instant. The
    /// `is_enabled` guard keeps the disabled path free of the refresh and
    /// the usage computation; same-instant samples coalesce in the sink.
    fn emit_link_sample(&mut self) {
        if !self.obs.is_enabled() {
            return;
        }
        let (up, down) = self.link_usage();
        self.obs.link_sample(self.now, &up, &down);
    }

    /// Recomputes group rates if any mutation happened since the last
    /// refresh.
    fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let specs: Vec<GroupSpec> = self
            .groups
            .iter()
            .map(|g| GroupSpec {
                src: g.src,
                dst: g.dst,
                count: g.count,
            })
            .collect();
        let rates = waterfill_groups(&specs, &self.up_gbps, &self.down_gbps);
        for (g, r) in self.groups.iter_mut().zip(rates) {
            g.rate = r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_finishes_at_bottleneck_time() {
        let mut sim = FlowSim::new(vec![1.0, 4.0], vec![4.0, 2.0]);
        let k = sim.add_flow(SiteId(0), SiteId(1), 10.0);
        let (kk, t) = sim.next_completion().unwrap();
        assert_eq!(kk, k);
        assert!((t - 10.0).abs() < 1e-9); // Uplink 1 GB/s is the bottleneck.
        sim.advance_to(t);
        assert!(sim.remaining_gb(k) < 1e-9);
        assert!((sim.total_wan_gb() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn competing_flows_slow_each_other_then_speed_up() {
        let mut sim = FlowSim::new(vec![2.0, 9.0, 9.0], vec![9.0; 3]);
        let a = sim.add_flow(SiteId(0), SiteId(1), 4.0);
        let b = sim.add_flow(SiteId(0), SiteId(2), 8.0);
        // Shared uplink 2 GB/s -> 1 GB/s each; flow a completes at t=4.
        let (first, t1) = sim.next_completion().unwrap();
        assert_eq!(first, a);
        assert!((t1 - 4.0).abs() < 1e-9);
        sim.advance_to(t1);
        sim.remove_flow(a);
        // Flow b has 4 GB left and now gets the full 2 GB/s: +2 s.
        let (second, t2) = sim.next_completion().unwrap();
        assert_eq!(second, b);
        assert!((t2 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn same_pair_flows_share_and_complete_in_size_order() {
        let mut sim = FlowSim::new(vec![2.0, 2.0], vec![2.0, 2.0]);
        let small = sim.add_flow(SiteId(0), SiteId(1), 1.0);
        let big = sim.add_flow(SiteId(0), SiteId(1), 3.0);
        // Each gets 1 GB/s; small finishes at t=1.
        let (first, t1) = sim.next_completion().unwrap();
        assert_eq!(first, small);
        assert!((t1 - 1.0).abs() < 1e-9);
        sim.advance_to(t1);
        sim.remove_flow(small);
        // Big has 2 GB left at the full 2 GB/s.
        let (second, t2) = sim.next_completion().unwrap();
        assert_eq!(second, big);
        assert!((t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn local_flow_completes_immediately_and_costs_no_wan() {
        let mut sim = FlowSim::new(vec![1.0], vec![1.0]);
        let k = sim.add_flow(SiteId(0), SiteId(0), 100.0);
        let (kk, t) = sim.next_completion().unwrap();
        assert_eq!(kk, k);
        assert_eq!(t, 0.0);
        assert_eq!(sim.total_wan_gb(), 0.0);
    }

    #[test]
    fn cancelling_a_flow_refunds_wan_accounting() {
        let mut sim = FlowSim::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        let k = sim.add_flow(SiteId(0), SiteId(1), 10.0);
        sim.advance_to(2.0);
        let unsent = sim.remove_flow(k);
        assert!((unsent - 8.0).abs() < 1e-9);
        assert!((sim.total_wan_gb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_drop_slows_flows() {
        let mut sim = FlowSim::new(vec![4.0, 9.0], vec![9.0, 9.0]);
        let k = sim.add_flow(SiteId(0), SiteId(1), 8.0);
        sim.advance_to(1.0); // 4 GB sent, 4 left.
        sim.set_capacity(SiteId(0), 1.0, 9.0);
        let (_, t) = sim.next_completion().unwrap();
        assert!((t - 5.0).abs() < 1e-9); // 4 GB at 1 GB/s from t=1.
        assert!((sim.rate_gbps(k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn key_reuse_is_safe() {
        let mut sim = FlowSim::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        let a = sim.add_flow(SiteId(0), SiteId(1), 1.0);
        sim.advance_to(1.0);
        sim.remove_flow(a);
        let b = sim.add_flow(SiteId(1), SiteId(0), 2.0);
        assert_eq!(sim.active_flows(), 1);
        assert!((sim.remaining_gb(b) - 2.0).abs() < 1e-9);
    }

    /// Drains `n` flows over `sites` sites to completion, asserting exact
    /// byte conservation: every completed flow must be removed with exactly
    /// zero remaining (the drift clamp in `remove_flow`), and the ledger
    /// must come back to the sum of sizes within 1e-9.
    fn drain_and_conserve(n: usize, sites: usize) {
        let mut sim = FlowSim::new(vec![1.0; sites], vec![1.0; sites]);
        let mut expected = 0.0;
        for i in 0..n {
            let src = i % sites;
            let dst = (i + 1 + i / sites) % sites;
            let gb = 0.1 + (i % 7) as f64 * 0.05;
            if src != dst {
                expected += gb;
            }
            sim.add_flow(SiteId(src), SiteId(dst), gb);
        }
        let mut done = 0;
        while let Some((k, t)) = sim.next_completion() {
            sim.advance_to(t);
            let rem = sim.remove_flow(k);
            assert_eq!(rem, 0.0, "completed flow removed with {rem} GB left");
            done += 1;
        }
        assert_eq!(done, n);
        assert!(
            (sim.total_wan_gb() - expected).abs() < 1e-9,
            "ledger {} vs expected {expected}",
            sim.total_wan_gb()
        );
    }

    #[test]
    fn many_flows_scale_and_conserve_bytes() {
        // A stress shape: 200 flows across 4 sites; drain to completion and
        // verify every flow finishes with total WAN equal to the bytes sent.
        drain_and_conserve(200, 4);
    }

    #[test]
    fn ten_thousand_flows_conserve_bytes_exactly() {
        // Drift accumulates with the number of rate recomputations, so the
        // 200-flow shape alone would not catch a leaky remainder refund.
        drain_and_conserve(10_000, 8);
    }

    #[test]
    fn obs_records_wan_pairs_and_link_samples() {
        let obs = Obs::recording(vec![1, 1]);
        let mut sim = FlowSim::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        sim.set_obs(obs.clone());
        let k = sim.add_flow(SiteId(0), SiteId(1), 10.0);
        sim.advance_to(2.0);
        sim.remove_flow(k); // Cancelled: 8 GB refunded.
        let r = obs.finish().unwrap();
        assert!((r.wan_pair(SiteId(0), SiteId(1)) - 2.0).abs() < 1e-9);
        assert!((r.total_wan_gb() - sim.total_wan_gb()).abs() < 1e-12);
        // One sample at add (t=0), one at remove (t=2).
        assert_eq!(r.link_timeline.len(), 2);
        assert!((r.link_timeline[0].up[0] - 1.0).abs() < 1e-12);
        assert_eq!(r.link_timeline[1].up[0], 0.0);
    }
}
