//! Site identity and per-site capacities.

use serde::{Deserialize, Serialize};

/// Identifier of a site within a [`crate::Cluster`].
///
/// Site ids are dense indices (`0..cluster.len()`), which lets every data
/// structure in the workspace use plain vectors indexed by site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl SiteId {
    /// The dense index of this site.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site-{}", self.0)
    }
}

/// Capacities of one geo-distributed site.
///
/// A *slot* is the unit of compute (a fixed bundle of cores and memory, as in
/// the paper §2.1); uplink and downlink are the WAN capacities toward the
/// congestion-free core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable name (e.g. the EC2 region).
    pub name: String,
    /// Number of compute slots (`S_x`).
    pub slots: usize,
    /// Uplink bandwidth in GB/s (`B_x^up`).
    pub up_gbps: f64,
    /// Downlink bandwidth in GB/s (`B_x^down`).
    pub down_gbps: f64,
}

impl Site {
    /// Creates a site with the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is non-positive or non-finite, or if the site
    /// has zero slots (a site that can hold data but never compute is
    /// expressed with data distributions, not zero slots).
    pub fn new(name: impl Into<String>, slots: usize, up_gbps: f64, down_gbps: f64) -> Self {
        assert!(slots > 0, "a site must have at least one slot");
        assert!(
            up_gbps > 0.0 && up_gbps.is_finite(),
            "uplink bandwidth must be positive and finite"
        );
        assert!(
            down_gbps > 0.0 && down_gbps.is_finite(),
            "downlink bandwidth must be positive and finite"
        );
        Self {
            name: name.into(),
            slots,
            up_gbps,
            down_gbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_display_and_index() {
        let id = SiteId(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "site-3");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        Site::new("x", 0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "uplink")]
    fn bad_bandwidth_rejected() {
        Site::new("x", 1, 0.0, 1.0);
    }
}
