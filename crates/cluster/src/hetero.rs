//! Heterogeneity samplers regenerating the capacity spreads of Figure 2.
//!
//! The paper characterizes one of the largest online service providers
//! (OSP): compute capacity varies by about two orders of magnitude across
//! hundreds of sites (Fig 2a), and inter-site bandwidth by about 18×
//! (Fig 2b). We do not have the proprietary measurements, so we regenerate
//! populations with the same spreads from heavy-tailed samplers; the bench
//! harness prints the resulting CDFs for `fig2`.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Parameters describing a heterogeneous capacity population.
#[derive(Debug, Clone, Copy)]
pub struct HeterogeneityProfile {
    /// Target max/min ratio of the population.
    pub spread: f64,
    /// Minimum value of the population (normalization base).
    pub min_value: f64,
}

impl HeterogeneityProfile {
    /// The compute-capacity profile of Fig 2(a): ~200× spread.
    pub fn osp_compute() -> Self {
        Self {
            spread: 200.0,
            min_value: 1.0,
        }
    }

    /// The bandwidth profile of Fig 2(b): ~18× spread.
    pub fn osp_bandwidth() -> Self {
        Self {
            spread: 18.0,
            min_value: 1.0,
        }
    }

    /// Samples `n` capacities with roughly the profile's spread.
    ///
    /// Values are drawn from a log-normal (heavy-tailed, always positive)
    /// and then min-max rescaled onto `[min_value, min_value * spread]`, so
    /// the advertised spread is hit exactly while the body of the
    /// distribution keeps the log-normal's long-tail shape, matching the
    /// concave CDFs in Figure 2.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        assert!(n >= 2, "need at least two sites to express a spread");
        // sigma chosen so that the 99th/1st percentile ratio of the raw
        // log-normal is on the order of `spread`.
        let sigma = (self.spread.ln() / 4.65).max(0.1);
        let dist = LogNormal::new(0.0, sigma).expect("valid log-normal");
        let mut raw: Vec<f64> = (0..n).map(|_| dist.sample(rng)).collect();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &raw {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = (hi - lo).max(1e-12);
        for v in &mut raw {
            let t = (*v - lo) / span;
            *v = self.min_value * (1.0 + t * (self.spread - 1.0));
        }
        raw
    }
}

/// Samples `n` per-site compute capacities (in slots) with the OSP's ~200×
/// spread, scaled so the smallest site has `min_slots` slots.
pub fn sample_compute_spread(n: usize, min_slots: usize, rng: &mut impl Rng) -> Vec<usize> {
    HeterogeneityProfile::osp_compute()
        .sample(n, rng)
        .into_iter()
        .map(|v| ((v * min_slots as f64).round() as usize).max(min_slots))
        .collect()
}

/// Samples `n` per-site bandwidths (GB/s) with the OSP's ~18× spread, scaled
/// so the slowest site has `min_gbps`.
pub fn sample_bandwidth_spread(n: usize, min_gbps: f64, rng: &mut impl Rng) -> Vec<f64> {
    HeterogeneityProfile::osp_bandwidth()
        .sample(n, rng)
        .into_iter()
        .map(|v| v * min_gbps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compute_spread_hits_two_orders_of_magnitude() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = HeterogeneityProfile::osp_compute().sample(300, &mut rng);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0f64, f64::max);
        assert!((hi / lo - 200.0).abs() < 1e-6, "spread was {}", hi / lo);
    }

    #[test]
    fn bandwidth_spread_is_about_18x() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = sample_bandwidth_spread(200, 0.1, &mut rng);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0f64, f64::max);
        assert!((hi / lo - 18.0).abs() < 1e-6);
        assert!(lo >= 0.1 - 1e-12);
    }

    #[test]
    fn slot_samples_respect_minimum() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = sample_compute_spread(100, 4, &mut rng);
        assert!(v.iter().all(|&s| s >= 4));
        assert!(v.iter().any(|&s| s > 400));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = HeterogeneityProfile::osp_compute().sample(50, &mut StdRng::seed_from_u64(5));
        let b = HeterogeneityProfile::osp_compute().sample(50, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
