//! Resource dynamics: sudden capacity drops at sites (§4.2 of the paper).

use crate::{Cluster, Site, SiteId};
use serde::{Deserialize, Serialize};

/// A capacity degradation event at one site.
///
/// The paper motivates these with higher-priority non-analytics load taking
/// compute slots, and WAN link failures shrinking available bandwidth. A
/// drop of `fraction` scales both compute and network capacity at the site
/// to `1 - fraction` of the configured value (the experiment in Fig 11
/// degrades both together).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityDrop {
    /// Site whose capacity drops.
    pub site: SiteId,
    /// Simulation time at which the drop takes effect, in seconds.
    pub at_time: f64,
    /// Fraction of capacity lost, in `[0, 1)`.
    pub fraction: f64,
}

impl CapacityDrop {
    /// Creates a drop event.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction < 1` and `at_time >= 0`.
    pub fn new(site: SiteId, at_time: f64, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        assert!(at_time >= 0.0 && at_time.is_finite());
        Self {
            site,
            at_time,
            fraction,
        }
    }

    /// Returns the degraded version of `site`'s configuration.
    ///
    /// Slots are rounded down but kept at a minimum of one, matching the
    /// invariant that a live site can always run at least one task.
    pub fn degraded(&self, site: &Site) -> Site {
        let keep = 1.0 - self.fraction;
        Site {
            name: site.name.clone(),
            slots: ((site.slots as f64 * keep).floor() as usize).max(1),
            up_gbps: site.up_gbps * keep,
            down_gbps: site.down_gbps * keep,
        }
    }

    /// Applies this drop to a cluster, returning the degraded cluster.
    pub fn apply(&self, cluster: &Cluster) -> Cluster {
        let sites = cluster
            .iter()
            .map(|(id, s)| {
                if id == self.site {
                    self.degraded(s)
                } else {
                    s.clone()
                }
            })
            .collect();
        Cluster::new(sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_scales_all_capacities() {
        let s = Site::new("x", 100, 2.0, 4.0);
        let d = CapacityDrop::new(SiteId(0), 10.0, 0.3);
        let g = d.degraded(&s);
        assert_eq!(g.slots, 70);
        assert!((g.up_gbps - 1.4).abs() < 1e-12);
        assert!((g.down_gbps - 2.8).abs() < 1e-12);
    }

    #[test]
    fn slots_never_drop_to_zero() {
        let s = Site::new("x", 1, 2.0, 4.0);
        let d = CapacityDrop::new(SiteId(0), 0.0, 0.9);
        assert_eq!(d.degraded(&s).slots, 1);
    }

    #[test]
    fn apply_touches_only_target_site() {
        let c = Cluster::new(vec![
            Site::new("a", 10, 1.0, 1.0),
            Site::new("b", 10, 1.0, 1.0),
        ]);
        let d = CapacityDrop::new(SiteId(1), 5.0, 0.5);
        let c2 = d.apply(&c);
        assert_eq!(c2.site(SiteId(0)).slots, 10);
        assert_eq!(c2.site(SiteId(1)).slots, 5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_full_drop() {
        CapacityDrop::new(SiteId(0), 0.0, 1.0);
    }
}
