//! Resource dynamics: sudden capacity drops at sites (§4.2 of the paper).
//!
//! Two representations coexist:
//!
//! - [`CapacityDrop`] is the original single-shot degradation (compute and
//!   network shrink together). [`CapacityDrop::apply`] rewrites a cluster
//!   *before* a run — the legacy pre-run mode; the engine now also accepts
//!   drops as mid-run events (`Engine::with_drops`), where they are
//!   converted into a [`DynamicsTimeline`].
//! - [`DynamicsTimeline`] is the general mid-run model: an ordered list of
//!   [`DynamicsEvent`]s (capacity drops and recoveries, full site outages,
//!   per-link bandwidth degradation) the engine applies at `at_time`
//!   through its event queue. Targets are always computed against the
//!   *configured baseline* site, so two events on one site do not compound.

use crate::{Cluster, Site, SiteId};
use serde::{Deserialize, Serialize};

/// A capacity degradation event at one site.
///
/// The paper motivates these with higher-priority non-analytics load taking
/// compute slots, and WAN link failures shrinking available bandwidth. A
/// drop of `fraction` scales both compute and network capacity at the site
/// to `1 - fraction` of the configured value (the experiment in Fig 11
/// degrades both together).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityDrop {
    /// Site whose capacity drops.
    pub site: SiteId,
    /// Simulation time at which the drop takes effect, in seconds.
    pub at_time: f64,
    /// Fraction of capacity lost, in `[0, 1)`.
    pub fraction: f64,
}

impl CapacityDrop {
    /// Creates a drop event.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction < 1` and `at_time >= 0`.
    pub fn new(site: SiteId, at_time: f64, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        assert!(at_time >= 0.0 && at_time.is_finite());
        Self {
            site,
            at_time,
            fraction,
        }
    }

    /// Returns the degraded version of `site`'s configuration.
    ///
    /// Slots are rounded down but kept at a minimum of one, matching the
    /// invariant that a live site can always run at least one task.
    pub fn degraded(&self, site: &Site) -> Site {
        let keep = 1.0 - self.fraction;
        Site {
            name: site.name.clone(),
            slots: ((site.slots as f64 * keep).floor() as usize).max(1),
            up_gbps: site.up_gbps * keep,
            down_gbps: site.down_gbps * keep,
        }
    }

    /// Applies this drop to a cluster, returning the degraded cluster.
    pub fn apply(&self, cluster: &Cluster) -> Cluster {
        let sites = cluster
            .iter()
            .map(|(id, s)| {
                if id == self.site {
                    self.degraded(s)
                } else {
                    s.clone()
                }
            })
            .collect();
        Cluster::new(sites)
    }
}

/// One kind of mid-run resource change at a site.
///
/// Every variant's target configuration is derived from the site's
/// *configured baseline*, never from its current (possibly already
/// degraded) state — applying `Capacity { keep: 0.5 }` twice leaves the
/// site at half capacity, not a quarter.
///
/// Serializes as an internally tagged object (`{"kind": "capacity",
/// "keep": 0.5}`); the impls are hand-written because the vendored serde
/// derive does not cover data-carrying enums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynamicsChange {
    /// Scale compute slots and both links to `keep` of the baseline
    /// (`0 < keep <= 1`). Slots round down but stay at least one — the
    /// mid-run equivalent of [`CapacityDrop`] with `fraction = 1 - keep`.
    Capacity {
        /// Fraction of baseline capacity kept.
        keep: f64,
    },
    /// Scale only the WAN links (`0 <= keep <= 1`); zero stalls flows on
    /// the link until a recovery. Compute slots are untouched.
    Links {
        /// Fraction of baseline uplink kept.
        up_keep: f64,
        /// Fraction of baseline downlink kept.
        down_keep: f64,
    },
    /// Full site outage: zero slots and zero link capacity. Attempts
    /// running at the site fail and re-enter the scheduling pool.
    Outage,
    /// Restore the configured baseline capacities.
    Recover,
}

impl Serialize for DynamicsChange {
    fn to_content(&self) -> serde::Content {
        use serde::Content;
        let kind = |k: &str| ("kind".to_string(), Content::Str(k.to_string()));
        match *self {
            DynamicsChange::Capacity { keep } => Content::Map(vec![
                kind("capacity"),
                ("keep".to_string(), Content::F64(keep)),
            ]),
            DynamicsChange::Links { up_keep, down_keep } => Content::Map(vec![
                kind("links"),
                ("up_keep".to_string(), Content::F64(up_keep)),
                ("down_keep".to_string(), Content::F64(down_keep)),
            ]),
            DynamicsChange::Outage => Content::Map(vec![kind("outage")]),
            DynamicsChange::Recover => Content::Map(vec![kind("recover")]),
        }
    }
}

impl Deserialize for DynamicsChange {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        use serde::DeError;
        let kind = content
            .get_field("kind")
            .ok_or_else(|| DeError::custom("dynamics change needs a `kind` field"))?;
        let serde::Content::Str(kind) = kind else {
            return Err(DeError::custom("`kind` must be a string"));
        };
        let num = |field: &str| -> Result<f64, DeError> {
            f64::from_content(
                content
                    .get_field(field)
                    .ok_or_else(|| DeError::custom(format!("missing field `{field}`")))?,
            )
        };
        match kind.as_str() {
            "capacity" => Ok(DynamicsChange::Capacity { keep: num("keep")? }),
            "links" => Ok(DynamicsChange::Links {
                up_keep: num("up_keep")?,
                down_keep: num("down_keep")?,
            }),
            "outage" => Ok(DynamicsChange::Outage),
            "recover" => Ok(DynamicsChange::Recover),
            other => Err(DeError::custom(format!(
                "unknown dynamics change kind `{other}` (capacity, links, outage, recover)"
            ))),
        }
    }
}

/// One timed resource-dynamics event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsEvent {
    /// Site the change applies to.
    pub site: SiteId,
    /// Simulation time at which the change takes effect, in seconds.
    pub at_time: f64,
    /// What changes.
    pub change: DynamicsChange,
}

impl DynamicsEvent {
    /// Creates a validated event.
    ///
    /// # Panics
    ///
    /// Panics when [`DynamicsEvent::validate`] would reject the event.
    pub fn new(site: SiteId, at_time: f64, change: DynamicsChange) -> Self {
        let ev = Self {
            site,
            at_time,
            change,
        };
        if let Err(e) = ev.validate() {
            panic!("invalid dynamics event: {e}");
        }
        ev
    }

    /// Checks the event's numeric ranges (deserialized events bypass
    /// [`DynamicsEvent::new`], so loaders call this explicitly).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.at_time.is_finite() && self.at_time >= 0.0) {
            return Err(format!("at_time {} must be finite and >= 0", self.at_time));
        }
        match self.change {
            DynamicsChange::Capacity { keep } => {
                if !(keep > 0.0 && keep <= 1.0) {
                    return Err(format!("capacity keep {keep} must be in (0, 1]"));
                }
            }
            DynamicsChange::Links { up_keep, down_keep } => {
                for (name, k) in [("up_keep", up_keep), ("down_keep", down_keep)] {
                    if !(0.0..=1.0).contains(&k) {
                        return Err(format!("links {name} {k} must be in [0, 1]"));
                    }
                }
            }
            DynamicsChange::Outage | DynamicsChange::Recover => {}
        }
        Ok(())
    }

    /// The site configuration in force once this event applies, derived
    /// from the configured `baseline`.
    pub fn target(&self, baseline: &Site) -> Site {
        let scaled = |keep: f64| Site {
            name: baseline.name.clone(),
            slots: ((baseline.slots as f64 * keep).floor() as usize).max(1),
            up_gbps: baseline.up_gbps * keep,
            down_gbps: baseline.down_gbps * keep,
        };
        match self.change {
            DynamicsChange::Capacity { keep } => scaled(keep),
            DynamicsChange::Links { up_keep, down_keep } => Site {
                name: baseline.name.clone(),
                slots: baseline.slots,
                up_gbps: baseline.up_gbps * up_keep,
                down_gbps: baseline.down_gbps * down_keep,
            },
            DynamicsChange::Outage => Site {
                name: baseline.name.clone(),
                slots: 0,
                up_gbps: 0.0,
                down_gbps: 0.0,
            },
            DynamicsChange::Recover => baseline.clone(),
        }
    }
}

/// An ordered schedule of mid-run resource changes.
///
/// Events are kept sorted by `at_time`; same-instant events preserve their
/// insertion order, so a run replaying a timeline is deterministic.
///
/// Serializes transparently as the JSON array of its events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicsTimeline {
    events: Vec<DynamicsEvent>,
}

impl Serialize for DynamicsTimeline {
    fn to_content(&self) -> serde::Content {
        self.events.to_content()
    }
}

impl Deserialize for DynamicsTimeline {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        // Deserialized timelines skip the constructor's validation (loaders
        // call `validate_for`) but still sort, preserving the ordering
        // invariant.
        let mut tl = Self {
            events: Vec::<DynamicsEvent>::from_content(content)?,
        };
        tl.sort();
        Ok(tl)
    }
}

impl DynamicsTimeline {
    /// Builds a timeline, sorting events by time (stable, so same-instant
    /// events keep their given order).
    ///
    /// # Panics
    ///
    /// Panics if any event fails [`DynamicsEvent::validate`].
    pub fn new(events: Vec<DynamicsEvent>) -> Self {
        let mut tl = Self { events };
        for ev in &tl.events {
            if let Err(e) = ev.validate() {
                panic!("invalid dynamics event: {e}");
            }
        }
        tl.sort();
        tl
    }

    /// Converts legacy [`CapacityDrop`]s into the equivalent timeline.
    pub fn from_drops(drops: &[CapacityDrop]) -> Self {
        Self::new(
            drops
                .iter()
                .map(|d| {
                    DynamicsEvent::new(
                        d.site,
                        d.at_time,
                        DynamicsChange::Capacity {
                            keep: 1.0 - d.fraction,
                        },
                    )
                })
                .collect(),
        )
    }

    /// Appends an event, keeping the timeline sorted.
    pub fn push(&mut self, ev: DynamicsEvent) {
        if let Err(e) = ev.validate() {
            panic!("invalid dynamics event: {e}");
        }
        self.events.push(ev);
        self.sort();
    }

    /// Merges another timeline into this one.
    pub fn extend(&mut self, other: DynamicsTimeline) {
        self.events.extend(other.events);
        self.sort();
    }

    fn sort(&mut self) {
        self.events.sort_by(|a, b| a.at_time.total_cmp(&b.at_time));
    }

    /// The events in time order.
    pub fn events(&self) -> &[DynamicsEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates every event against a cluster (site indices in range,
    /// numeric ranges) — the checked entry point for deserialized
    /// timelines.
    pub fn validate_for(&self, cluster: &Cluster) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            ev.validate().map_err(|e| format!("event {i}: {e}"))?;
            if ev.site.index() >= cluster.len() {
                return Err(format!(
                    "event {i}: site {} out of range (cluster has {} sites)",
                    ev.site.index(),
                    cluster.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_scales_all_capacities() {
        let s = Site::new("x", 100, 2.0, 4.0);
        let d = CapacityDrop::new(SiteId(0), 10.0, 0.3);
        let g = d.degraded(&s);
        assert_eq!(g.slots, 70);
        assert!((g.up_gbps - 1.4).abs() < 1e-12);
        assert!((g.down_gbps - 2.8).abs() < 1e-12);
    }

    #[test]
    fn slots_never_drop_to_zero() {
        let s = Site::new("x", 1, 2.0, 4.0);
        let d = CapacityDrop::new(SiteId(0), 0.0, 0.9);
        assert_eq!(d.degraded(&s).slots, 1);
    }

    #[test]
    fn apply_touches_only_target_site() {
        let c = Cluster::new(vec![
            Site::new("a", 10, 1.0, 1.0),
            Site::new("b", 10, 1.0, 1.0),
        ]);
        let d = CapacityDrop::new(SiteId(1), 5.0, 0.5);
        let c2 = d.apply(&c);
        assert_eq!(c2.site(SiteId(0)).slots, 10);
        assert_eq!(c2.site(SiteId(1)).slots, 5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_full_drop() {
        CapacityDrop::new(SiteId(0), 0.0, 1.0);
    }

    #[test]
    fn timeline_sorts_by_time_and_keeps_tie_order() {
        let tl = DynamicsTimeline::new(vec![
            DynamicsEvent::new(SiteId(1), 5.0, DynamicsChange::Recover),
            DynamicsEvent::new(SiteId(0), 1.0, DynamicsChange::Outage),
            DynamicsEvent::new(SiteId(2), 5.0, DynamicsChange::Outage),
        ]);
        let times: Vec<f64> = tl.events().iter().map(|e| e.at_time).collect();
        assert_eq!(times, vec![1.0, 5.0, 5.0]);
        // Same-instant events keep insertion order (site 1 before site 2).
        assert_eq!(tl.events()[1].site, SiteId(1));
        assert_eq!(tl.events()[2].site, SiteId(2));
    }

    #[test]
    fn targets_derive_from_baseline_not_current_state() {
        let base = Site::new("x", 10, 2.0, 4.0);
        let half = DynamicsEvent::new(SiteId(0), 1.0, DynamicsChange::Capacity { keep: 0.5 });
        let t = half.target(&base);
        assert_eq!(t.slots, 5);
        assert!((t.up_gbps - 1.0).abs() < 1e-12);
        // Applying the same event's target again from the baseline yields
        // the same configuration — no compounding.
        assert_eq!(half.target(&base), t);
    }

    #[test]
    fn outage_zeroes_and_recover_restores() {
        let base = Site::new("x", 10, 2.0, 4.0);
        let out = DynamicsEvent::new(SiteId(0), 1.0, DynamicsChange::Outage).target(&base);
        assert_eq!(out.slots, 0);
        assert_eq!(out.up_gbps, 0.0);
        assert_eq!(out.down_gbps, 0.0);
        let rec = DynamicsEvent::new(SiteId(0), 2.0, DynamicsChange::Recover).target(&base);
        assert_eq!(rec, base);
    }

    #[test]
    fn links_change_keeps_slots_and_allows_zero() {
        let base = Site::new("x", 10, 2.0, 4.0);
        let ev = DynamicsEvent::new(
            SiteId(0),
            1.0,
            DynamicsChange::Links {
                up_keep: 0.0,
                down_keep: 0.25,
            },
        );
        let t = ev.target(&base);
        assert_eq!(t.slots, 10);
        assert_eq!(t.up_gbps, 0.0);
        assert!((t.down_gbps - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_drops_matches_degraded() {
        let base = Site::new("x", 100, 2.0, 4.0);
        let drop = CapacityDrop::new(SiteId(0), 10.0, 0.3);
        let tl = DynamicsTimeline::from_drops(&[drop]);
        assert_eq!(tl.len(), 1);
        let converted = tl.events()[0].target(&base);
        let legacy = drop.degraded(&base);
        assert_eq!(converted.slots, legacy.slots);
        assert!((converted.up_gbps - legacy.up_gbps).abs() < 1e-12);
        assert!((converted.down_gbps - legacy.down_gbps).abs() < 1e-12);
    }

    #[test]
    fn timeline_serde_roundtrip() {
        let tl = DynamicsTimeline::new(vec![
            DynamicsEvent::new(SiteId(0), 10.0, DynamicsChange::Capacity { keep: 0.5 }),
            DynamicsEvent::new(SiteId(1), 20.0, DynamicsChange::Outage),
            DynamicsEvent::new(SiteId(1), 30.0, DynamicsChange::Recover),
            DynamicsEvent::new(
                SiteId(2),
                40.0,
                DynamicsChange::Links {
                    up_keep: 0.1,
                    down_keep: 1.0,
                },
            ),
        ]);
        let json = serde_json::to_string(&tl).unwrap();
        assert!(json.contains("\"kind\":\"outage\""), "json: {json}");
        let back: DynamicsTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tl);
    }

    #[test]
    fn validate_for_rejects_bad_sites_and_ranges() {
        let c = Cluster::new(vec![Site::new("a", 1, 1.0, 1.0)]);
        let tl = DynamicsTimeline::new(vec![DynamicsEvent::new(
            SiteId(3),
            1.0,
            DynamicsChange::Outage,
        )]);
        assert!(tl.validate_for(&c).unwrap_err().contains("out of range"));
        // A deserialized timeline can carry out-of-range numbers; validate
        // catches them even though the constructor was bypassed.
        let bad: DynamicsTimeline = serde_json::from_str(
            r#"[{"site":0,"at_time":1.0,"change":{"kind":"capacity","keep":1.5}}]"#,
        )
        .unwrap();
        assert!(bad.validate_for(&c).is_err());
    }

    #[test]
    #[should_panic(expected = "keep")]
    fn rejects_zero_capacity_keep() {
        DynamicsEvent::new(SiteId(0), 0.0, DynamicsChange::Capacity { keep: 0.0 });
    }
}
