//! The cluster: an indexed collection of sites behind a congestion-free core.

use crate::{Site, SiteId};
use serde::{Deserialize, Serialize};

/// A geo-distributed cluster of sites.
///
/// The core network is congestion-free (paper §2.1): the only network
/// constraints are each site's uplink and downlink. A `Cluster` is immutable
/// configuration; mutable capacity state during a simulation (e.g. after a
/// [`crate::CapacityDrop`]) lives in the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    sites: Vec<Site>,
}

impl Cluster {
    /// Creates a cluster from a list of sites.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn new(sites: Vec<Site>) -> Self {
        assert!(!sites.is_empty(), "a cluster needs at least one site");
        Self { sites }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the cluster has no sites (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Iterates over `(SiteId, &Site)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &Site)> {
        self.sites.iter().enumerate().map(|(i, s)| (SiteId(i), s))
    }

    /// All site ids in index order.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> {
        (0..self.sites.len()).map(SiteId)
    }

    /// Total number of compute slots across all sites.
    pub fn total_slots(&self) -> usize {
        self.sites.iter().map(|s| s.slots).sum()
    }

    /// Slots per site as a dense vector.
    pub fn slots_vec(&self) -> Vec<usize> {
        self.sites.iter().map(|s| s.slots).collect()
    }

    /// The site with the most compute slots (ties broken by lowest id);
    /// used by the Centralized baseline as the aggregation target.
    pub fn most_powerful_site(&self) -> SiteId {
        let (idx, _) = self
            .sites
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.slots
                    .cmp(&b.slots)
                    .then_with(|| (a.up_gbps + a.down_gbps).total_cmp(&(b.up_gbps + b.down_gbps)))
                    .then(ib.cmp(ia))
            })
            .expect("cluster is non-empty");
        SiteId(idx)
    }

    /// Coefficient of variation of the per-site slot counts — the resource
    /// skew statistic used in §6.4 of the paper.
    pub fn slot_skew_cv(&self) -> f64 {
        cv(self.sites.iter().map(|s| s.slots as f64))
    }

    /// Coefficient of variation of the per-site uplink bandwidths.
    pub fn bandwidth_skew_cv(&self) -> f64 {
        cv(self.sites.iter().map(|s| s.up_gbps))
    }
}

/// Coefficient of variation (stddev / mean) of a sequence; zero for empty or
/// zero-mean input.
pub(crate) fn cv(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c3() -> Cluster {
        Cluster::new(vec![
            Site::new("a", 40, 5.0, 5.0),
            Site::new("b", 10, 1.0, 1.0),
            Site::new("c", 20, 2.0, 5.0),
        ])
    }

    #[test]
    fn totals_and_lookup() {
        let c = c3();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_slots(), 70);
        assert_eq!(c.site(SiteId(1)).slots, 10);
        assert_eq!(c.slots_vec(), vec![40, 10, 20]);
    }

    #[test]
    fn most_powerful_prefers_slots_then_bandwidth() {
        let c = c3();
        assert_eq!(c.most_powerful_site(), SiteId(0));
        let tie = Cluster::new(vec![
            Site::new("a", 10, 1.0, 1.0),
            Site::new("b", 10, 9.0, 9.0),
        ]);
        assert_eq!(tie.most_powerful_site(), SiteId(1));
    }

    #[test]
    fn skew_statistics() {
        let uniform = Cluster::new(vec![
            Site::new("a", 5, 1.0, 1.0),
            Site::new("b", 5, 1.0, 1.0),
        ]);
        assert!(uniform.slot_skew_cv().abs() < 1e-12);
        assert!(c3().slot_skew_cv() > 0.4);
    }
}
