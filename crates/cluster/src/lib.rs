//! Geo-distributed cluster model for wide-area data analytics.
//!
//! This crate models the substrate the Tetrium paper schedules over
//! (§2.1 of the paper): a set of *sites* (datacenters or edge clusters), each
//! with a number of compute slots and uplink/downlink WAN capacities, plus
//! per-site data distributions for job inputs. Sites are connected through a
//! congestion-free core, so a transfer is constrained only by the sender's
//! uplink and the receiver's downlink — the same assumption as the paper and
//! Iridium before it.
//!
//! It also provides the heterogeneity samplers used to regenerate the
//! capacity CDFs of Figure 2 (compute spread of ~200×, bandwidth spread of
//! ~18×) and the cluster presets used throughout the evaluation (the 8-region
//! EC2 deployment, the 30-instance deployment, and the 50-site trace-driven
//! configuration).
//!
//! Units across the whole workspace: data volumes in **GB**, bandwidth in
//! **GB/s**, time in **seconds**.

mod data;
mod dynamics;
mod hetero;
mod presets;
mod site;
mod topology;

pub use data::DataDistribution;
pub use dynamics::{CapacityDrop, DynamicsChange, DynamicsEvent, DynamicsTimeline};
pub use hetero::{sample_bandwidth_spread, sample_compute_spread, HeterogeneityProfile};
pub use presets::{ec2_eight_regions, ec2_thirty_instances, trace_fifty_sites, zipf_cluster};
pub use site::{Site, SiteId};
pub use topology::Cluster;
