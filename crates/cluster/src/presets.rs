//! Cluster presets mirroring the paper's evaluation setups (§6.1).

use crate::{Cluster, Site};
use rand::Rng;

/// The paper's 8-region EC2 deployment: one instance per region, slot counts
/// between 4 (`c4.xlarge`) and 16 (`c4.4xlarge`), inter-site bandwidth
/// between 100 Mbps and 1 Gbps (0.0125–0.125 GB/s).
pub fn ec2_eight_regions() -> Cluster {
    // (region, slots, up GB/s, down GB/s) — slots spread over [4, 16] and
    // bandwidths over [100 Mbps, 1 Gbps] as reported in §6.1; per-region
    // values are chosen to reflect relative EC2 connectivity (US/EU well
    // provisioned, Sao Paulo/Sydney/Singapore constrained).
    let spec: [(&str, usize, f64, f64); 8] = [
        ("us-west-2 (Oregon)", 16, 0.125, 0.125),
        ("us-east-1 (Virginia)", 16, 0.125, 0.125),
        ("sa-east-1 (Sao Paulo)", 4, 0.0125, 0.025),
        ("eu-central-1 (Frankfurt)", 8, 0.1, 0.1),
        ("eu-west-1 (Ireland)", 8, 0.1, 0.1),
        ("ap-northeast-1 (Tokyo)", 8, 0.05, 0.0625),
        ("ap-southeast-2 (Sydney)", 4, 0.025, 0.025),
        ("ap-southeast-1 (Singapore)", 4, 0.0125, 0.0175),
    ];
    Cluster::new(
        spec.iter()
            .map(|&(name, slots, up, down)| Site::new(name, slots, up, down))
            .collect(),
    )
}

/// The paper's "30-site" deployment mimicked with 30 instances: capacities
/// cycle over the same heterogeneity envelope as the 8-region setup.
pub fn ec2_thirty_instances() -> Cluster {
    let slots = [16, 4, 8, 12, 4, 16, 8, 4, 12, 8];
    let bw = [
        0.125, 0.0125, 0.1, 0.05, 0.025, 0.125, 0.0625, 0.0175, 0.1, 0.05,
    ];
    let sites = (0..30)
        .map(|i| {
            Site::new(
                format!("inst-{i:02}"),
                slots[i % slots.len()],
                bw[i % bw.len()],
                bw[(i + 3) % bw.len()],
            )
        })
        .collect();
    Cluster::new(sites)
}

/// The 50-site trace-driven configuration (§6.1): slots between 25 and 5000
/// (a mix of large datacenters and small edge clusters), bandwidth between
/// 100 Mbps and 2 Gbps (0.0125–0.25 GB/s).
pub fn trace_fifty_sites(rng: &mut impl Rng) -> Cluster {
    let n = 50;
    let profile = crate::HeterogeneityProfile {
        spread: 5000.0 / 25.0,
        min_value: 25.0,
    };
    let slots = profile.sample(n, rng);
    let bwp = crate::HeterogeneityProfile {
        spread: 0.25 / 0.0125,
        min_value: 0.0125,
    };
    let up = bwp.sample(n, rng);
    let down = bwp.sample(n, rng);
    Cluster::new(
        (0..n)
            .map(|i| {
                Site::new(
                    format!("dc-{i:02}"),
                    slots[i].round() as usize,
                    up[i],
                    down[i],
                )
            })
            .collect(),
    )
}

/// A cluster whose slot and bandwidth skew follow Zipf distributions with the
/// given exponents — the §6.4 "heterogeneity of resources" sweep, where
/// exponent 0 is uniform and larger exponents concentrate capacity on a few
/// sites.
pub fn zipf_cluster(
    n: usize,
    slot_exponent: f64,
    bw_exponent: f64,
    total_slots: usize,
    rng: &mut impl Rng,
) -> Cluster {
    assert!(n >= 2);
    let slot_w = zipf_weights(n, slot_exponent, rng);
    let bw_w = zipf_weights(n, bw_exponent, rng);
    let sites = (0..n)
        .map(|i| {
            let slots = ((total_slots as f64 * slot_w[i]).round() as usize).max(1);
            // Bandwidth envelope matches the 50-site preset: min 100 Mbps.
            let up = 0.0125 + bw_w[i] * n as f64 * 0.1;
            Site::new(format!("z-{i:02}"), slots, up, up)
        })
        .collect();
    Cluster::new(sites)
}

/// Normalized Zipf weights of ranks `1..=n`, randomly permuted so that the
/// largest site is not always site 0.
fn zipf_weights(n: usize, exponent: f64, rng: &mut impl Rng) -> Vec<f64> {
    let mut w: Vec<f64> = if exponent <= 0.0 {
        vec![1.0; n]
    } else {
        (1..=n).map(|r| 1.0 / (r as f64).powf(exponent)).collect()
    };
    // Fisher-Yates permutation of the rank weights.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        w.swap(i, j);
    }
    let total: f64 = w.iter().sum();
    for v in &mut w {
        *v /= total;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ec2_preset_matches_paper_envelope() {
        let c = ec2_eight_regions();
        assert_eq!(c.len(), 8);
        let max_slots = c.iter().map(|(_, s)| s.slots).max().unwrap();
        let min_slots = c.iter().map(|(_, s)| s.slots).min().unwrap();
        assert_eq!((min_slots, max_slots), (4, 16));
        for (_, s) in c.iter() {
            assert!(s.up_gbps >= 0.0125 - 1e-12 && s.up_gbps <= 0.125 + 1e-12);
        }
    }

    #[test]
    fn thirty_instances() {
        assert_eq!(ec2_thirty_instances().len(), 30);
    }

    #[test]
    fn fifty_site_envelope() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = trace_fifty_sites(&mut rng);
        assert_eq!(c.len(), 50);
        let max = c.iter().map(|(_, s)| s.slots).max().unwrap();
        let min = c.iter().map(|(_, s)| s.slots).min().unwrap();
        assert!(min >= 25);
        assert!((1000..=5001).contains(&max), "max slots {max}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = zipf_cluster(10, 0.0, 0.0, 1000, &mut rng);
        let slots: Vec<usize> = c.iter().map(|(_, s)| s.slots).collect();
        assert!(slots.iter().all(|&s| s == 100));
    }

    #[test]
    fn zipf_high_exponent_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = zipf_cluster(10, 1.6, 1.6, 1000, &mut rng);
        let max = c.iter().map(|(_, s)| s.slots).max().unwrap();
        assert!(max > 300, "expected concentration, max={max}");
        assert!(c.slot_skew_cv() > 0.8);
    }
}
