//! Per-site data distributions.

use crate::topology::cv;
use crate::{Cluster, SiteId};
use serde::{Deserialize, Serialize};

/// How much of a dataset (input or intermediate) lives at each site, in GB.
///
/// A `DataDistribution` is indexed by [`SiteId`] and is the unit the
/// placement models reason about: `I_x^input` for map stages and
/// `I_x^shufl` for reduce stages (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataDistribution {
    gb: Vec<f64>,
}

impl DataDistribution {
    /// Creates a distribution from per-site volumes in GB.
    ///
    /// # Panics
    ///
    /// Panics if any volume is negative or non-finite.
    pub fn new(gb: Vec<f64>) -> Self {
        assert!(
            gb.iter().all(|v| v.is_finite() && *v >= 0.0),
            "data volumes must be finite and non-negative"
        );
        Self { gb }
    }

    /// An all-zero distribution over `n` sites.
    pub fn zeros(n: usize) -> Self {
        Self { gb: vec![0.0; n] }
    }

    /// A distribution with the entire `total_gb` at a single site.
    pub fn concentrated(n: usize, site: SiteId, total_gb: f64) -> Self {
        let mut gb = vec![0.0; n];
        gb[site.index()] = total_gb;
        Self::new(gb)
    }

    /// Number of sites this distribution covers.
    pub fn len(&self) -> usize {
        self.gb.len()
    }

    /// Whether the distribution covers zero sites.
    pub fn is_empty(&self) -> bool {
        self.gb.is_empty()
    }

    /// Volume at `site` in GB.
    pub fn at(&self, site: SiteId) -> f64 {
        self.gb[site.index()]
    }

    /// Mutable volume at `site` in GB.
    pub fn at_mut(&mut self, site: SiteId) -> &mut f64 {
        &mut self.gb[site.index()]
    }

    /// Total volume across sites in GB.
    pub fn total(&self) -> f64 {
        self.gb.iter().sum()
    }

    /// Per-site volumes as a slice, indexed by site id.
    pub fn as_slice(&self) -> &[f64] {
        &self.gb
    }

    /// Fraction of the total volume at `site`; zero when the total is zero.
    pub fn fraction_at(&self, site: SiteId) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.at(site) / t
        }
    }

    /// Scales every site's volume by `factor` (e.g. the intermediate/input
    /// ratio `alpha` when deriving shuffle data from input data).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite());
        Self {
            gb: self.gb.iter().map(|v| v * factor).collect(),
        }
    }

    /// Coefficient of variation of per-site volumes — the data-skew statistic
    /// used for Figure 12(b)(c) of the paper.
    pub fn skew_cv(&self) -> f64 {
        cv(self.gb.iter().copied())
    }

    /// Checks that the distribution has one entry per cluster site.
    pub fn matches(&self, cluster: &Cluster) -> bool {
        self.gb.len() == cluster.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let d = DataDistribution::new(vec![20.0, 30.0, 50.0]);
        assert!((d.total() - 100.0).abs() < 1e-12);
        assert!((d.fraction_at(SiteId(2)) - 0.5).abs() < 1e-12);
        assert!((d.scaled(0.5).total() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_places_everything_at_one_site() {
        let d = DataDistribution::concentrated(4, SiteId(2), 7.0);
        assert_eq!(d.at(SiteId(2)), 7.0);
        assert_eq!(d.at(SiteId(0)), 0.0);
        assert_eq!(d.total(), 7.0);
    }

    #[test]
    fn zero_total_fraction_is_zero() {
        let d = DataDistribution::zeros(3);
        assert_eq!(d.fraction_at(SiteId(1)), 0.0);
        assert_eq!(d.skew_cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_volume() {
        DataDistribution::new(vec![1.0, -0.5]);
    }
}
