//! Jobs: DAGs of stages submitted to the global manager.

use crate::{Stage, StageKind};
use serde::{Deserialize, Serialize};
use tetrium_cluster::Cluster;

/// Identifier of a job within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub usize);

impl JobId {
    /// Dense index of this job.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// An analytics job: a DAG of stages arriving at a point in time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Identifier, unique within a workload.
    pub id: JobId,
    /// Human-readable name (e.g. the query template that produced it).
    pub name: String,
    /// Submission time in seconds.
    pub arrival: f64,
    /// Stages in topological order (deps point to earlier indices).
    pub stages: Vec<Stage>,
}

impl Job {
    /// Creates a job, validating the stage DAG.
    ///
    /// # Panics
    ///
    /// Panics if there are no stages, if a dependency points at itself or a
    /// later stage (i.e. the vector is not in topological order), or if a
    /// non-root stage lists a dependency out of range.
    pub fn new(id: JobId, name: impl Into<String>, arrival: f64, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "a job needs at least one stage");
        assert!(arrival >= 0.0 && arrival.is_finite());
        for (i, s) in stages.iter().enumerate() {
            for &d in &s.deps {
                assert!(d < i, "stage {i} depends on {d}, not topologically ordered");
            }
            if s.is_root() {
                assert!(
                    s.input.is_some(),
                    "root stage {i} must carry an external input distribution"
                );
            } else {
                assert!(s.input.is_none(), "non-root stage {i} must not carry input");
            }
        }
        Self {
            id,
            name: name.into(),
            arrival,
            stages,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.num_tasks).sum()
    }

    /// Total external input volume in GB (over all root stages).
    pub fn input_gb(&self) -> f64 {
        self.stages
            .iter()
            .filter_map(|s| s.input.as_ref())
            .map(|d| d.total())
            .sum()
    }

    /// Expected total intermediate volume in GB: the summed outputs of every
    /// non-final stage, assuming each stage's `output_ratio` applies to its
    /// input volume. Used for the intermediate/input characterization of
    /// Fig 12(a).
    pub fn expected_intermediate_gb(&self) -> f64 {
        let outs = self.expected_stage_outputs_gb();
        let last = self.stages.len() - 1;
        outs.iter()
            .enumerate()
            .filter(|(i, _)| *i != last)
            .map(|(_, v)| v)
            .sum()
    }

    /// Expected output volume of each stage in GB, propagating
    /// `output_ratio` through the DAG.
    pub fn expected_stage_outputs_gb(&self) -> Vec<f64> {
        let mut outs = vec![0.0; self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            let input: f64 = if s.is_root() {
                s.input.as_ref().map(|d| d.total()).unwrap_or(0.0)
            } else {
                s.deps.iter().map(|&d| outs[d]).sum()
            };
            outs[i] = input * s.output_ratio;
        }
        outs
    }

    /// Stages with no dependents (the DAG's sinks).
    pub fn sink_stages(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.stages.len()];
        for s in &self.stages {
            for &d in &s.deps {
                has_child[d] = true;
            }
        }
        (0..self.stages.len()).filter(|&i| !has_child[i]).collect()
    }

    /// Checks every root-stage input covers exactly the cluster's sites.
    pub fn matches_cluster(&self, cluster: &Cluster) -> bool {
        self.stages
            .iter()
            .filter_map(|s| s.input.as_ref())
            .all(|d| d.matches(cluster))
    }

    /// Convenience constructor for the common two-stage map→reduce job over
    /// one input dataset.
    #[allow(clippy::too_many_arguments)]
    pub fn map_reduce(
        id: JobId,
        name: impl Into<String>,
        arrival: f64,
        input: tetrium_cluster::DataDistribution,
        num_map: usize,
        map_secs: f64,
        intermediate_ratio: f64,
        num_reduce: usize,
        reduce_secs: f64,
    ) -> Self {
        let stages = vec![
            Stage::root_map(input, num_map, map_secs, intermediate_ratio),
            Stage::reduce(vec![0], num_reduce, reduce_secs, 0.1),
        ];
        Self::new(id, name, arrival, stages)
    }

    /// Number of map-like and reduce-like stages.
    pub fn stage_kind_counts(&self) -> (usize, usize) {
        let maps = self
            .stages
            .iter()
            .filter(|s| s.kind == StageKind::Map)
            .count();
        (maps, self.stages.len() - maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_cluster::DataDistribution;

    fn mr_job() -> Job {
        Job::map_reduce(
            JobId(0),
            "t",
            0.0,
            DataDistribution::new(vec![20.0, 30.0, 50.0]),
            1000,
            2.0,
            0.5,
            500,
            1.0,
        )
    }

    #[test]
    fn map_reduce_shape() {
        let j = mr_job();
        assert_eq!(j.num_stages(), 2);
        assert_eq!(j.total_tasks(), 1500);
        assert!((j.input_gb() - 100.0).abs() < 1e-12);
        // Intermediate = 100 GB * 0.5 from the map stage.
        assert!((j.expected_intermediate_gb() - 50.0).abs() < 1e-12);
        assert_eq!(j.sink_stages(), vec![1]);
    }

    #[test]
    fn stage_output_propagation() {
        let input = DataDistribution::new(vec![10.0, 10.0]);
        let stages = vec![
            Stage::root_map(input, 10, 1.0, 0.5),
            Stage::reduce(vec![0], 5, 1.0, 0.4),
            Stage::reduce(vec![1], 5, 1.0, 0.2),
        ];
        let j = Job::new(JobId(1), "chain", 0.0, stages);
        let outs = j.expected_stage_outputs_gb();
        assert!((outs[0] - 10.0).abs() < 1e-12);
        assert!((outs[1] - 4.0).abs() < 1e-12);
        assert!((outs[2] - 0.8).abs() < 1e-12);
        assert!((j.expected_intermediate_gb() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn join_dag_sinks() {
        let a = DataDistribution::new(vec![5.0, 5.0]);
        let b = DataDistribution::new(vec![2.0, 8.0]);
        let stages = vec![
            Stage::root_map(a, 4, 1.0, 1.0),
            Stage::root_map(b, 4, 1.0, 1.0),
            Stage::reduce(vec![0, 1], 4, 1.0, 0.1),
        ];
        let j = Job::new(JobId(2), "join", 1.0, stages);
        assert_eq!(j.sink_stages(), vec![2]);
        assert_eq!(j.stage_kind_counts(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "topologically ordered")]
    fn rejects_forward_dependency() {
        let input = DataDistribution::new(vec![1.0]);
        let mut s = Stage::root_map(input, 1, 1.0, 1.0);
        s.deps = vec![0]; // Self-dependency.
        Job::new(JobId(0), "bad", 0.0, vec![s]);
    }
}
