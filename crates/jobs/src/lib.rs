//! Data-parallel job model: DAGs of map/reduce stages with parallel tasks.
//!
//! A job (paper §2.1) is a DAG of *stages*; each stage is a set of parallel
//! tasks. Stages come in two communication patterns that Tetrium places
//! differently (§3):
//!
//! - **map-like** stages read partitioned input one-to-one (each task reads
//!   one partition, which lives at a specific site), and
//! - **reduce-like** stages read all-to-all (each task reads its share of the
//!   intermediate data from every site).
//!
//! The model distinguishes the *estimated* task duration (what the scheduler
//! believes, obtained in the real system from finished tasks of the same
//! stage, §5) from the *actual* duration sampled by the execution engine,
//! which lets the harness reproduce the estimation-error sensitivity study of
//! Figure 12(d).

mod job;
mod rounding;
mod stage;

pub use job::{Job, JobId};
pub use rounding::largest_remainder_round;
pub use stage::{Stage, StageKind};
