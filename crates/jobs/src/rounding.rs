//! Largest-remainder rounding of fractional allocations.

/// Rounds non-negative `fractions` (summing to roughly 1) into integer counts
/// summing exactly to `total`, using the largest-remainder (Hamilton) method.
///
/// This is how the fractional task placements produced by the LP models are
/// turned into integral task counts per site (§3.1: "the number of tasks at
/// each site needs to be integral; hence, we round the solution").
///
/// Fractions that do not sum to 1 are normalized first. Degenerate inputs
/// are sanitized rather than rejected — the plan cache's rescale path feeds
/// this function distributions that have drifted arbitrarily far from the
/// ones the LP solved: negative, NaN and infinite entries are treated as
/// zero weight, and an input with no positive weight at all (including
/// all-NaN) yields all counts at index 0.
///
/// # Examples
///
/// ```
/// use tetrium_jobs::largest_remainder_round;
/// let counts = largest_remainder_round(&[0.5, 0.3, 0.2], 10);
/// assert_eq!(counts, vec![5, 3, 2]);
/// assert_eq!(largest_remainder_round(&[0.34, 0.33, 0.33], 10), vec![4, 3, 3]);
/// // Degenerate entries carry zero weight instead of panicking.
/// assert_eq!(largest_remainder_round(&[f64::NAN, 1.0, -3.0], 4), vec![0, 4, 0]);
/// ```
pub fn largest_remainder_round(fractions: &[f64], total: usize) -> Vec<usize> {
    let n = fractions.len();
    if n == 0 {
        return Vec::new();
    }
    // Sanitize: non-finite and negative entries contribute nothing. An
    // infinite entry cannot be honored proportionally, so it is dropped
    // rather than letting it absorb the whole allocation and poison the
    // scaling of every other site.
    let clean = |f: &f64| if f.is_finite() { f.max(0.0) } else { 0.0 };
    let sum: f64 = fractions.iter().map(clean).sum();
    if sum <= 0.0 || !sum.is_finite() {
        let mut out = vec![0usize; n];
        out[0] = total;
        return out;
    }
    let scaled: Vec<f64> = fractions
        .iter()
        .map(|f| clean(f) / sum * total as f64)
        .collect();
    let mut counts: Vec<usize> = scaled.iter().map(|s| s.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut remainder: Vec<(usize, f64)> = scaled
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s - s.floor()))
        .collect();
    // Sort by remainder descending, breaking ties by index for determinism.
    remainder.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for k in 0..total.saturating_sub(assigned) {
        counts[remainder[k % n].0] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fractions_round_exactly() {
        assert_eq!(largest_remainder_round(&[0.25, 0.75], 4), vec![1, 3]);
    }

    #[test]
    fn sums_are_preserved() {
        for total in [0usize, 1, 7, 100, 501] {
            let counts = largest_remainder_round(&[0.15, 0.05, 0.4, 0.4], total);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn unnormalized_input_is_normalized() {
        assert_eq!(largest_remainder_round(&[2.0, 2.0], 4), vec![2, 2]);
    }

    #[test]
    fn zero_vector_dumps_on_first() {
        assert_eq!(largest_remainder_round(&[0.0, 0.0, 0.0], 5), vec![5, 0, 0]);
    }

    #[test]
    fn empty_input() {
        assert!(largest_remainder_round(&[], 3).is_empty());
    }

    #[test]
    fn nan_entries_carry_zero_weight() {
        assert_eq!(
            largest_remainder_round(&[f64::NAN, 0.5, 0.5], 4),
            vec![0, 2, 2]
        );
    }

    #[test]
    fn infinite_entries_carry_zero_weight() {
        assert_eq!(
            largest_remainder_round(&[f64::INFINITY, 1.0, 1.0], 4),
            vec![0, 2, 2]
        );
        assert_eq!(
            largest_remainder_round(&[f64::NEG_INFINITY, 1.0], 2),
            vec![0, 2]
        );
    }

    #[test]
    fn negative_entries_carry_zero_weight() {
        assert_eq!(largest_remainder_round(&[-2.0, 1.0, 1.0], 6), vec![0, 3, 3]);
    }

    #[test]
    fn all_degenerate_dumps_on_first() {
        assert_eq!(
            largest_remainder_round(&[f64::NAN, f64::NAN], 3),
            vec![3, 0]
        );
        assert_eq!(
            largest_remainder_round(&[-1.0, f64::INFINITY], 3),
            vec![3, 0]
        );
    }

    #[test]
    fn degenerate_inputs_preserve_totals() {
        for total in [0usize, 1, 17, 500] {
            for fr in [
                vec![f64::NAN, 0.3, f64::INFINITY, 0.7],
                vec![0.0, -0.5, f64::NAN],
                vec![f64::NEG_INFINITY; 4],
            ] {
                let counts = largest_remainder_round(&fr, total);
                assert_eq!(counts.iter().sum::<usize>(), total, "input {fr:?}");
            }
        }
    }
}
