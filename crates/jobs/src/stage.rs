//! Stages: sets of parallel tasks with a communication pattern.

use serde::{Deserialize, Serialize};
use tetrium_cluster::DataDistribution;

/// Communication pattern of a stage (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// One-to-one: each task reads one input partition that lives at a
    /// specific site (map stages, §3.1).
    Map,
    /// All-to-all: each task reads its share of the intermediate data from
    /// every site (reduce stages, §3.2).
    Reduce,
}

/// One stage of a job's DAG.
///
/// Stages are stored in topological order within a [`crate::Job`]; `deps`
/// refer to earlier stage indices. A stage with no deps is a *root* and reads
/// the external input in `input`; non-root stages read the outputs of their
/// parents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stage {
    /// Communication pattern.
    pub kind: StageKind,
    /// Indices of parent stages within the job (all `<` this stage's index).
    pub deps: Vec<usize>,
    /// Number of parallel tasks.
    pub num_tasks: usize,
    /// Mean compute time of one task in seconds (`t_map` / `t_red`),
    /// excluding any network fetch time.
    pub task_secs: f64,
    /// Output volume as a fraction of this stage's input volume (the
    /// intermediate/input ratio of Fig 12(a) when applied to the whole job).
    pub output_ratio: f64,
    /// External input for root stages (GB per site); `None` for non-roots.
    pub input: Option<DataDistribution>,
    /// Optional per-task share of the stage's input for reduce stages with
    /// key skew; uniform when `None`. Normalized on construction.
    pub task_weights: Option<Vec<f64>>,
}

impl Stage {
    /// Creates a root map stage reading the given external input.
    pub fn root_map(
        input: DataDistribution,
        num_tasks: usize,
        task_secs: f64,
        output_ratio: f64,
    ) -> Self {
        assert!(num_tasks > 0, "a stage needs at least one task");
        Self {
            kind: StageKind::Map,
            deps: Vec::new(),
            num_tasks,
            task_secs,
            output_ratio,
            input: Some(input),
            task_weights: None,
        }
    }

    /// Creates a non-root map stage reading the outputs of `deps` one-to-one.
    pub fn map(deps: Vec<usize>, num_tasks: usize, task_secs: f64, output_ratio: f64) -> Self {
        assert!(num_tasks > 0, "a stage needs at least one task");
        assert!(!deps.is_empty(), "non-root map stages need parents");
        Self {
            kind: StageKind::Map,
            deps,
            num_tasks,
            task_secs,
            output_ratio,
            input: None,
            task_weights: None,
        }
    }

    /// Creates a reduce stage shuffling the outputs of `deps`.
    pub fn reduce(deps: Vec<usize>, num_tasks: usize, task_secs: f64, output_ratio: f64) -> Self {
        assert!(num_tasks > 0, "a stage needs at least one task");
        assert!(!deps.is_empty(), "reduce stages need parents");
        Self {
            kind: StageKind::Reduce,
            deps,
            num_tasks,
            task_secs,
            output_ratio,
            input: None,
            task_weights: None,
        }
    }

    /// Attaches key-skew weights (one per task); they are normalized to sum
    /// to 1 so each weight is the task's share of the stage input.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `num_tasks`, any weight is negative
    /// or non-finite, or all weights are zero.
    pub fn with_task_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.num_tasks, "one weight per task");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        self.task_weights = Some(weights.into_iter().map(|w| w / total).collect());
        self
    }

    /// Whether this stage reads external input.
    pub fn is_root(&self) -> bool {
        self.deps.is_empty()
    }

    /// The share of the stage's input read by task `i` (uniform unless
    /// key-skew weights were attached).
    pub fn task_share(&self, i: usize) -> f64 {
        assert!(i < self.num_tasks);
        match &self.task_weights {
            Some(w) => w[i],
            None => 1.0 / self.num_tasks as f64,
        }
    }

    /// Coefficient of variation of per-task shares (0 when uniform); the
    /// intermediate-data-skew statistic of Fig 12(c).
    pub fn task_skew_cv(&self) -> f64 {
        match &self.task_weights {
            None => 0.0,
            Some(w) => {
                let mean = 1.0 / w.len() as f64;
                let var = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / w.len() as f64;
                var.sqrt() / mean
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shares_sum_to_one() {
        let s = Stage::reduce(vec![0], 4, 1.0, 0.5);
        let sum: f64 = (0..4).map(|i| s.task_share(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(s.task_skew_cv(), 0.0);
    }

    #[test]
    fn weights_are_normalized() {
        let s = Stage::reduce(vec![0], 3, 1.0, 0.5).with_task_weights(vec![2.0, 1.0, 1.0]);
        assert!((s.task_share(0) - 0.5).abs() < 1e-12);
        assert!(s.task_skew_cv() > 0.0);
    }

    #[test]
    #[should_panic(expected = "one weight per task")]
    fn weight_length_checked() {
        Stage::reduce(vec![0], 3, 1.0, 0.5).with_task_weights(vec![1.0]);
    }

    #[test]
    fn root_detection() {
        let input = DataDistribution::new(vec![1.0, 2.0]);
        assert!(Stage::root_map(input, 2, 1.0, 0.5).is_root());
        assert!(!Stage::map(vec![0], 2, 1.0, 0.5).is_root());
    }
}
