//! Trace → [`Scenario`] loading and the reverse export.
//!
//! The loader only runs downstream of the validator: every panic-bearing
//! constructor invariant in `tetrium-jobs`/`tetrium-cluster` (positive
//! task counts, finite non-negative volumes, topological dep order) is a
//! constraint the validator already checked, so [`scenario_from_trace`]
//! validates first and converts without any fallible arithmetic left.

use super::schema::{RawRow, RawTrace, TraceParseError};
use super::validate::{validate, ValidationReport, ValidatorConfig};
use crate::io::{Scenario, ScenarioError};
use std::path::Path;
use tetrium_cluster::{Cluster, DataDistribution};
use tetrium_jobs::{Job, JobId, Stage};

/// Errors from trace ingestion.
#[derive(Debug)]
pub enum IngestError {
    /// Filesystem failure reading the trace file.
    Io(std::io::Error),
    /// The file is not a structurally readable trace.
    Parse(TraceParseError),
    /// The trace parsed but failed the constraint pipeline; the report
    /// carries every violation.
    Rejected(ValidationReport),
    /// The trace does not fit the target cluster.
    Cluster(String),
    /// The converted scenario failed its own consistency checks.
    Scenario(ScenarioError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "trace io error: {e}"),
            IngestError::Parse(e) => write!(f, "trace parse error: {e}"),
            IngestError::Rejected(r) => write!(f, "{r}"),
            IngestError::Cluster(m) => write!(f, "trace/cluster mismatch: {m}"),
            IngestError::Scenario(e) => write!(f, "converted scenario invalid: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<TraceParseError> for IngestError {
    fn from(e: TraceParseError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<ScenarioError> for IngestError {
    fn from(e: ScenarioError) -> Self {
        IngestError::Scenario(e)
    }
}

/// Reads a raw trace from disk, sniffing JSON vs CSV from the leading
/// non-whitespace byte (`{` → JSON, `#` → CSV pragma) so the file
/// extension carries no meaning.
///
/// # Errors
///
/// IO failures and structurally unreadable files; per-row damage is *not*
/// an error here — it surfaces through the validator.
pub fn read_trace_file(path: &Path) -> Result<RawTrace, IngestError> {
    let body = std::fs::read_to_string(path)?;
    parse_trace_str(&body)
}

/// Parses a raw trace from a string, sniffing the rendering.
///
/// # Errors
///
/// Structurally unreadable input (neither a JSON object nor a CSV pragma).
pub fn parse_trace_str(body: &str) -> Result<RawTrace, IngestError> {
    match body.trim_start().as_bytes().first() {
        Some(b'{') => Ok(RawTrace::from_json(body)?),
        Some(b'#') => Ok(RawTrace::from_csv(body)?),
        _ => Err(IngestError::Parse(TraceParseError::Structure(
            "trace must be a JSON object or start with the CSV pragma line".into(),
        ))),
    }
}

/// Validates a raw trace and converts it into a [`Scenario`] over the
/// given cluster.
///
/// # Errors
///
/// [`IngestError::Rejected`] with the full violation report when the
/// validator fires; [`IngestError::Cluster`] when the cluster's site
/// count differs from the trace header.
pub fn scenario_from_trace(
    trace: &RawTrace,
    cluster: Cluster,
    cfg: &ValidatorConfig,
) -> Result<Scenario, IngestError> {
    validate(trace, cfg).map_err(IngestError::Rejected)?;
    if cluster.len() != trace.sites {
        return Err(IngestError::Cluster(format!(
            "trace declares {} sites, cluster has {}",
            trace.sites,
            cluster.len()
        )));
    }
    let mut jobs: Vec<Job> = Vec::new();
    let mut start = 0usize;
    while start < trace.rows.len() {
        let name = trace.rows[start].job.clone().unwrap_or_default();
        let mut end = start;
        while end < trace.rows.len() && trace.rows[end].job.as_deref() == Some(name.as_str()) {
            end += 1;
        }
        let rows = &trace.rows[start..end];
        let arrival = rows[0].submit_s.unwrap_or(0.0);
        let stages: Vec<Stage> = rows.iter().map(stage_from_row).collect();
        jobs.push(Job::new(JobId(jobs.len()), name, arrival, stages));
        start = end;
    }
    let description = format!(
        "ingested trace '{}' ({} jobs over {} sites)",
        trace.source,
        jobs.len(),
        trace.sites
    );
    Ok(Scenario::new(description, cluster, jobs)?)
}

/// One-call ingestion: read, validate, convert.
///
/// # Errors
///
/// Any of the [`IngestError`] cases.
pub fn ingest(
    path: &Path,
    cluster: Cluster,
    cfg: &ValidatorConfig,
) -> Result<Scenario, IngestError> {
    let trace = read_trace_file(path)?;
    scenario_from_trace(&trace, cluster, cfg)
}

/// Converts one validated row into a [`Stage`]. Only called on rows the
/// validator has cleared, so the unwraps and casts cannot fire.
fn stage_from_row(r: &RawRow) -> Stage {
    let deps: Vec<usize> = r
        .deps
        .as_ref()
        .map(|d| d.iter().map(|x| *x as usize).collect())
        .unwrap_or_default();
    let tasks = r.tasks.unwrap_or(1.0) as usize;
    let task_s = r.task_s.unwrap_or(0.0);
    let output_gb = r.output_gb.unwrap_or(0.0);
    if deps.is_empty() {
        let by_site = r.input_gb_by_site.clone().unwrap_or_default();
        let input = DataDistribution::new(by_site);
        let total = input.total();
        let ratio = if total > 0.0 { output_gb / total } else { 0.0 };
        Stage::root_map(input, tasks, task_s, ratio)
    } else {
        let input = r.input_gb.unwrap_or(0.0);
        let ratio = if input > 0.0 { output_gb / input } else { 0.0 };
        if r.kind.as_deref() == Some("map") {
            Stage::map(deps, tasks, task_s, ratio)
        } else {
            Stage::reduce(deps, tasks, task_s, ratio)
        }
    }
}

/// Exports jobs back into the raw trace format — the inverse of
/// [`scenario_from_trace`] up to the representation change from
/// `output_ratio` to absolute `output_gb`. Used to turn synthetic
/// `trace_like_jobs` workloads into valid trace files for tests and
/// benchmarks.
pub fn trace_from_jobs(jobs: &[Job], sites: usize, source: &str) -> RawTrace {
    let mut rows: Vec<RawRow> = Vec::new();
    for job in jobs {
        let outs = job.expected_stage_outputs_gb();
        for (i, s) in job.stages.iter().enumerate() {
            let row_no = rows.len() + 1;
            let is_root = s.is_root();
            rows.push(RawRow {
                row: row_no,
                job: Some(job.name.clone()),
                submit_s: Some(job.arrival),
                stage: Some(i as f64),
                deps: Some(s.deps.iter().map(|&d| d as f64).collect()),
                kind: Some(
                    if s.kind == tetrium_jobs::StageKind::Map {
                        "map"
                    } else {
                        "reduce"
                    }
                    .to_string(),
                ),
                tasks: Some(s.num_tasks as f64),
                task_s: Some(s.task_secs),
                input_gb: if is_root {
                    None
                } else {
                    Some(s.deps.iter().map(|&d| outs[d]).sum())
                },
                input_gb_by_site: if is_root {
                    s.input.as_ref().map(|d| d.as_slice().to_vec())
                } else {
                    None
                },
                output_gb: Some(outs[i]),
                bad_fields: Vec::new(),
            });
        }
    }
    RawTrace {
        source: source.to_string(),
        sites,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trace_like_jobs, TraceParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::Site;

    fn cluster() -> Cluster {
        Cluster::new(vec![
            Site::new("a", 8, 1.0, 1.0),
            Site::new("b", 4, 0.5, 0.5),
            Site::new("c", 4, 0.25, 0.5),
        ])
    }

    #[test]
    fn synthetic_jobs_survive_export_validate_import() {
        let cluster = cluster();
        let mut rng = StdRng::seed_from_u64(42);
        let jobs = trace_like_jobs(&cluster, 6, &TraceParams::default(), &mut rng);
        let trace = trace_from_jobs(&jobs, cluster.len(), "synthetic");
        assert!(validate(&trace, &ValidatorConfig::default()).is_ok());
        let scenario = scenario_from_trace(&trace, cluster, &ValidatorConfig::default()).unwrap();
        assert_eq!(scenario.jobs.len(), jobs.len());
        for (orig, back) in jobs.iter().zip(&scenario.jobs) {
            assert_eq!(orig.name, back.name);
            assert_eq!(orig.arrival, back.arrival);
            assert_eq!(orig.num_stages(), back.num_stages());
            assert_eq!(orig.total_tasks(), back.total_tasks());
            assert_eq!(orig.input_gb(), back.input_gb());
        }
    }

    #[test]
    fn scenario_json_round_trip_is_byte_identical() {
        let cluster = cluster();
        let mut rng = StdRng::seed_from_u64(7);
        let jobs = trace_like_jobs(&cluster, 4, &TraceParams::default(), &mut rng);
        let trace = trace_from_jobs(&jobs, cluster.len(), "synthetic");
        let scenario = scenario_from_trace(&trace, cluster, &ValidatorConfig::default()).unwrap();
        let json = scenario.to_json().unwrap();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back.to_json().unwrap(), json);
    }

    #[test]
    fn rejected_trace_reports_not_panics() {
        let body = r#"{"format": "tetrium-trace/v1", "sites": 3, "rows": [
            {"job": "x", "submit_s": -1.0, "stage": 0, "deps": [], "kind": "mop",
             "tasks": 0, "task_s": 1.0, "input_gb_by_site": [1.0], "output_gb": 1.0}
        ]}"#;
        let trace = parse_trace_str(body).unwrap();
        let err = scenario_from_trace(&trace, cluster(), &ValidatorConfig::default()).unwrap_err();
        let IngestError::Rejected(report) = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(report.distinct_constraints() >= 3, "{report}");
    }

    #[test]
    fn cluster_arity_is_enforced() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = Cluster::new(vec![Site::new("solo", 4, 1.0, 1.0)]);
        let jobs = trace_like_jobs(&small, 2, &TraceParams::default(), &mut rng);
        let trace = trace_from_jobs(&jobs, 1, "synthetic");
        let err = scenario_from_trace(&trace, cluster(), &ValidatorConfig::default()).unwrap_err();
        assert!(matches!(err, IngestError::Cluster(_)), "{err:?}");
    }

    #[test]
    fn format_sniffing_rejects_garbage() {
        assert!(matches!(
            parse_trace_str("hello"),
            Err(IngestError::Parse(_))
        ));
    }
}
