//! Real-trace ingestion: schema, validation gate, and loader.
//!
//! The pipeline is `file → RawTrace → validator → Scenario`:
//!
//! - [`schema`] parses Google/Alibaba-cluster-trace-shaped JSON or CSV
//!   *leniently* — per-field damage is recorded on the row instead of
//!   aborting the parse, so the validator can address every problem;
//! - [`validate`] runs the composable constraint pipeline and reports
//!   **all** violations with row/field addresses;
//! - [`loader`] converts a validated trace into a [`crate::Scenario`]
//!   and can export synthetic jobs back into trace form.
//!
//! See DESIGN.md §14 for the trace schema and the constraint list.

pub mod loader;
pub mod schema;
pub mod validate;

pub use loader::{
    ingest, parse_trace_str, read_trace_file, scenario_from_trace, trace_from_jobs, IngestError,
};
pub use schema::{RawRow, RawTrace, TraceParseError, TRACE_FORMAT};
pub use validate::{
    validate, TraceProfile, ValidationReport, ValidatorConfig, Violation, CONSTRAINTS,
};
