//! Raw trace schema: the on-disk shape of a replayable cluster trace.
//!
//! The format (`tetrium-trace/v1`) is modeled on the public
//! Google/Alibaba cluster traces: one *row per stage* carrying the job it
//! belongs to, its submit timestamp, the stage's position in the DAG, task
//! count and duration, and byte volumes in and out. Both JSON and a
//! semicolon-nested CSV rendering are supported; the two parse to the same
//! [`RawTrace`].
//!
//! Parsing is deliberately *lenient*: a missing, `null`, or wrongly-typed
//! field never aborts the load. Every field is an `Option` and type errors
//! are recorded per row in [`RawRow::bad_fields`], so the validator
//! (`super::validate`) can report **all** problems with row/field spans in
//! one pass instead of panicking (or bailing) on the first. Only damage
//! that makes rows unaddressable — unparseable JSON, a missing `rows`
//! array, an unknown format tag — is a [`TraceParseError`].

use serde_json::Value;

/// Format tag expected in the JSON header / CSV pragma line.
pub const TRACE_FORMAT: &str = "tetrium-trace/v1";

/// Fields a row may carry; used for unknown-field detection and spans.
const ROW_FIELDS: &[&str] = &[
    "job",
    "submit_s",
    "stage",
    "deps",
    "kind",
    "tasks",
    "task_s",
    "input_gb",
    "input_gb_by_site",
    "output_gb",
];

/// A whole trace file: header plus one row per (job, stage).
#[derive(Debug, Clone, PartialEq)]
pub struct RawTrace {
    /// Where the trace came from (free-form: `synthetic`, `alibaba`, ...).
    pub source: String,
    /// Number of sites the per-site byte columns are indexed over.
    pub sites: usize,
    /// Stage rows in file order.
    pub rows: Vec<RawRow>,
}

/// One stage row, exactly as parsed — nothing is validated here.
///
/// Numeric fields are kept as `f64` even where integers are expected
/// (`stage`, `tasks`, `deps`) so that negative or fractional values survive
/// parsing and surface as *validation* violations with a row address.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawRow {
    /// 1-based row address: the data-row ordinal, identical in the JSON
    /// and CSV renderings. Violations cite this.
    pub row: usize,
    /// Job the stage belongs to (rows of one job must be contiguous).
    pub job: Option<String>,
    /// Job submit time in seconds (identical on every row of a job).
    pub submit_s: Option<f64>,
    /// Stage index within the job (dense, ascending from 0).
    pub stage: Option<f64>,
    /// Parent stage indices; `Some(vec![])` is an explicit root.
    pub deps: Option<Vec<f64>>,
    /// Communication pattern: `"map"` or `"reduce"`.
    pub kind: Option<String>,
    /// Number of parallel tasks.
    pub tasks: Option<f64>,
    /// Mean task compute seconds.
    pub task_s: Option<f64>,
    /// Declared stage input volume in GB (non-root rows; checked against
    /// the parents' outputs by the byte-conservation constraint).
    pub input_gb: Option<f64>,
    /// Per-site external input in GB (root rows; length must equal the
    /// header's `sites`).
    pub input_gb_by_site: Option<Vec<f64>>,
    /// Stage output volume in GB.
    pub output_gb: Option<f64>,
    /// Type/shape errors found while parsing this row: `(field, message)`.
    /// Reported by the `schema` constraint.
    pub bad_fields: Vec<(&'static str, String)>,
}

/// Damage that leaves no addressable rows to validate.
#[derive(Debug)]
pub enum TraceParseError {
    /// The file is not parseable JSON at all.
    Json(serde_json::Error),
    /// The file parsed but is not a `tetrium-trace/v1` document (wrong or
    /// missing format tag, `rows` not an array, bad header field).
    Structure(String),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::Json(e) => write!(f, "trace is not valid JSON: {e}"),
            TraceParseError::Structure(m) => write!(f, "trace structure error: {m}"),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl RawTrace {
    /// Parses the JSON rendering. See the module docs for leniency rules.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] only for unaddressable damage; field-level
    /// problems land in [`RawRow::bad_fields`] instead.
    pub fn from_json(body: &str) -> Result<Self, TraceParseError> {
        let v: Value = serde_json::from_str(body).map_err(TraceParseError::Json)?;
        let obj = v
            .as_object()
            .ok_or_else(|| TraceParseError::Structure("top level must be an object".into()))?;
        let format = obj.get("format").and_then(Value::as_str).unwrap_or("");
        if format != TRACE_FORMAT {
            return Err(TraceParseError::Structure(format!(
                "format tag '{format}' is not '{TRACE_FORMAT}'"
            )));
        }
        let source = obj
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let sites =
            obj.get("sites").and_then(Value::as_u64).ok_or_else(|| {
                TraceParseError::Structure("header needs a numeric 'sites'".into())
            })? as usize;
        let rows_v = obj
            .get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| TraceParseError::Structure("header needs a 'rows' array".into()))?;
        let rows = rows_v
            .iter()
            .enumerate()
            .map(|(i, rv)| row_from_value(i + 1, rv))
            .collect();
        Ok(Self {
            source,
            sites,
            rows,
        })
    }

    /// Parses the CSV rendering: a pragma line
    /// `# tetrium-trace/v1 sites=N [source=S]`, a header line naming the
    /// columns, then one line per row. Lists nest with `;`
    /// (`deps` = `0;1`, `input_gb_by_site` = `1.0;2.0;...`); an empty cell
    /// is a missing field. No quoting — the format carries no free text
    /// beyond job names, which must not contain commas.
    ///
    /// # Errors
    ///
    /// [`TraceParseError::Structure`] when the pragma or header line is
    /// missing/unreadable; cell-level problems land in
    /// [`RawRow::bad_fields`]. An *empty* list (a root's `deps`) renders
    /// as `-` to stay distinct from a missing cell.
    pub fn from_csv(body: &str) -> Result<Self, TraceParseError> {
        let mut lines = body.lines().enumerate();
        let (_, pragma) = lines
            .next()
            .ok_or_else(|| TraceParseError::Structure("empty file".into()))?;
        let pragma = pragma
            .strip_prefix('#')
            .map(str::trim)
            .ok_or_else(|| TraceParseError::Structure("first line must be a '#' pragma".into()))?;
        let mut parts = pragma.split_whitespace();
        if parts.next() != Some(TRACE_FORMAT) {
            return Err(TraceParseError::Structure(format!(
                "pragma must start with '{TRACE_FORMAT}'"
            )));
        }
        let mut sites: Option<usize> = None;
        let mut source = "unknown".to_string();
        for p in parts {
            if let Some(n) = p.strip_prefix("sites=") {
                sites = n.parse().ok();
            } else if let Some(s) = p.strip_prefix("source=") {
                source = s.to_string();
            }
        }
        let sites =
            sites.ok_or_else(|| TraceParseError::Structure("pragma needs 'sites=N'".into()))?;
        let (_, header) = lines
            .next()
            .ok_or_else(|| TraceParseError::Structure("missing CSV header line".into()))?;
        let columns: Vec<&str> = header.split(',').map(str::trim).collect();
        for c in &columns {
            if !ROW_FIELDS.contains(c) {
                return Err(TraceParseError::Structure(format!(
                    "unknown CSV column '{c}'"
                )));
            }
        }
        let mut rows = Vec::new();
        for (_, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            rows.push(row_from_csv(rows.len() + 1, &columns, line));
        }
        Ok(Self {
            source,
            sites,
            rows,
        })
    }

    /// Serializes to the pretty JSON rendering (the canonical one; fixture
    /// files and the exporter both use it).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("trace serializes")
    }

    /// The JSON value form.
    pub fn to_value(&self) -> Value {
        use serde_json::json;
        let rows: Vec<Value> = self.rows.iter().map(row_to_value).collect();
        json!({
            "format": TRACE_FORMAT,
            "source": self.source,
            "sites": self.sites,
            "rows": rows,
        })
    }

    /// Serializes to the CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "# {TRACE_FORMAT} sites={} source={}\n\
             job,submit_s,stage,deps,kind,tasks,task_s,input_gb,input_gb_by_site,output_gb\n",
            self.sites, self.source
        );
        for r in &self.rows {
            let cell_f = |v: &Option<f64>| v.map(fmt_f64).unwrap_or_default();
            let list = |v: &Option<Vec<f64>>| match v {
                None => String::new(),
                Some(xs) if xs.is_empty() => "-".to_string(),
                Some(xs) => xs.iter().map(|x| fmt_f64(*x)).collect::<Vec<_>>().join(";"),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.job.as_deref().unwrap_or(""),
                cell_f(&r.submit_s),
                cell_f(&r.stage),
                list(&r.deps),
                r.kind.as_deref().unwrap_or(""),
                cell_f(&r.tasks),
                cell_f(&r.task_s),
                cell_f(&r.input_gb),
                list(&r.input_gb_by_site),
                cell_f(&r.output_gb),
            ));
        }
        out
    }
}

/// Shortest-round-trip float formatting for CSV cells (Rust's `{}` on f64
/// prints the shortest string that parses back to the same bits).
fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

fn row_to_value(r: &RawRow) -> Value {
    use serde_json::json;
    let mut v = json!({});
    if let Some(job) = &r.job {
        v["job"] = json!(job);
    }
    if let Some(x) = r.submit_s {
        v["submit_s"] = json!(x);
    }
    if let Some(x) = r.stage {
        v["stage"] = json!(x);
    }
    if let Some(d) = &r.deps {
        v["deps"] = json!(d);
    }
    if let Some(k) = &r.kind {
        v["kind"] = json!(k);
    }
    if let Some(x) = r.tasks {
        v["tasks"] = json!(x);
    }
    if let Some(x) = r.task_s {
        v["task_s"] = json!(x);
    }
    if let Some(x) = r.input_gb {
        v["input_gb"] = json!(x);
    }
    if let Some(b) = &r.input_gb_by_site {
        v["input_gb_by_site"] = json!(b);
    }
    if let Some(x) = r.output_gb {
        v["output_gb"] = json!(x);
    }
    v
}

/// Converts one JSON row into a [`RawRow`], recording type errors instead
/// of failing.
fn row_from_value(row: usize, v: &Value) -> RawRow {
    let mut r = RawRow {
        row,
        ..RawRow::default()
    };
    let Some(obj) = v.as_object() else {
        r.bad_fields
            .push(("row", format!("row is not an object: {v}")));
        return r;
    };
    for key in obj.keys() {
        if !ROW_FIELDS.contains(&key.as_str()) {
            r.bad_fields.push(("row", format!("unknown field '{key}'")));
        }
    }
    let take_str = |r: &mut RawRow, field: &'static str| -> Option<String> {
        match obj.get(field) {
            None | Some(Value::Null) => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(other) => {
                r.bad_fields
                    .push((field, format!("expected a string, got {other}")));
                None
            }
        }
    };
    let take_f64 = |r: &mut RawRow, field: &'static str| -> Option<f64> {
        match obj.get(field) {
            None | Some(Value::Null) => None,
            Some(other) => match other.as_f64() {
                Some(x) => Some(x),
                None => {
                    r.bad_fields
                        .push((field, format!("expected a number, got {other}")));
                    None
                }
            },
        }
    };
    let take_list = |r: &mut RawRow, field: &'static str| -> Option<Vec<f64>> {
        match obj.get(field) {
            None | Some(Value::Null) => None,
            Some(Value::Array(xs)) => {
                let mut out = Vec::with_capacity(xs.len());
                for (i, x) in xs.iter().enumerate() {
                    match x.as_f64() {
                        Some(f) => out.push(f),
                        None => {
                            r.bad_fields
                                .push((field, format!("entry {i} is not a number: {x}")));
                            return None;
                        }
                    }
                }
                Some(out)
            }
            Some(other) => {
                r.bad_fields
                    .push((field, format!("expected an array, got {other}")));
                None
            }
        }
    };
    r.job = take_str(&mut r, "job");
    r.submit_s = take_f64(&mut r, "submit_s");
    r.stage = take_f64(&mut r, "stage");
    r.deps = take_list(&mut r, "deps");
    r.kind = take_str(&mut r, "kind");
    r.tasks = take_f64(&mut r, "tasks");
    r.task_s = take_f64(&mut r, "task_s");
    r.input_gb = take_f64(&mut r, "input_gb");
    r.input_gb_by_site = take_list(&mut r, "input_gb_by_site");
    r.output_gb = take_f64(&mut r, "output_gb");
    r
}

/// Converts one CSV line into a [`RawRow`] under the given column order.
fn row_from_csv(row: usize, columns: &[&str], line: &str) -> RawRow {
    let mut r = RawRow {
        row,
        ..RawRow::default()
    };
    let cells: Vec<&str> = line.split(',').map(str::trim).collect();
    if cells.len() != columns.len() {
        r.bad_fields.push((
            "row",
            format!(
                "{} cells, header has {} columns",
                cells.len(),
                columns.len()
            ),
        ));
    }
    for (col, cell) in columns.iter().zip(&cells) {
        if cell.is_empty() {
            continue;
        }
        match *col {
            "job" => r.job = Some((*cell).to_string()),
            "kind" => r.kind = Some((*cell).to_string()),
            "submit_s" => r.submit_s = parse_cell(&mut r, "submit_s", cell),
            "stage" => r.stage = parse_cell(&mut r, "stage", cell),
            "tasks" => r.tasks = parse_cell(&mut r, "tasks", cell),
            "task_s" => r.task_s = parse_cell(&mut r, "task_s", cell),
            "input_gb" => r.input_gb = parse_cell(&mut r, "input_gb", cell),
            "output_gb" => r.output_gb = parse_cell(&mut r, "output_gb", cell),
            "deps" => r.deps = parse_list(&mut r, "deps", cell),
            "input_gb_by_site" => {
                r.input_gb_by_site = parse_list(&mut r, "input_gb_by_site", cell);
            }
            _ => unreachable!("columns were checked against ROW_FIELDS"),
        }
    }
    r
}

fn parse_cell(r: &mut RawRow, field: &'static str, cell: &str) -> Option<f64> {
    match cell.parse::<f64>() {
        Ok(x) => Some(x),
        Err(_) => {
            r.bad_fields
                .push((field, format!("'{cell}' is not a number")));
            None
        }
    }
}

fn parse_list(r: &mut RawRow, field: &'static str, cell: &str) -> Option<Vec<f64>> {
    if cell == "-" {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for part in cell.split(';') {
        match part.trim().parse::<f64>() {
            Ok(x) => out.push(x),
            Err(_) => {
                r.bad_fields
                    .push((field, format!("list entry '{part}' is not a number")));
                return None;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"{
        "format": "tetrium-trace/v1",
        "source": "test",
        "sites": 2,
        "rows": [
            {"job": "a", "submit_s": 0.0, "stage": 0, "deps": [], "kind": "map",
             "tasks": 4, "task_s": 1.5, "input_gb_by_site": [1.0, 3.0], "output_gb": 2.0},
            {"job": "a", "submit_s": 0.0, "stage": 1, "deps": [0], "kind": "reduce",
             "tasks": 2, "task_s": 1.0, "input_gb": 2.0, "output_gb": 0.2}
        ]
    }"#;

    #[test]
    fn json_parses_rows_in_order() {
        let t = RawTrace::from_json(MINI).unwrap();
        assert_eq!(t.sites, 2);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].row, 1);
        assert_eq!(t.rows[0].job.as_deref(), Some("a"));
        assert_eq!(t.rows[0].deps, Some(vec![]));
        assert_eq!(t.rows[1].deps, Some(vec![0.0]));
        assert!(t.rows.iter().all(|r| r.bad_fields.is_empty()));
    }

    #[test]
    fn wrong_types_become_bad_fields_not_errors() {
        let body = r#"{"format": "tetrium-trace/v1", "sites": 2, "rows": [
            {"job": 7, "submit_s": "soon", "stage": 0, "deps": [], "kind": "map",
             "tasks": 4, "task_s": 1.0, "input_gb_by_site": [1.0, 1.0], "output_gb": 1.0,
             "surprise": true}
        ]}"#;
        let t = RawTrace::from_json(body).unwrap();
        let bad = &t.rows[0].bad_fields;
        assert!(bad.iter().any(|(f, _)| *f == "job"));
        assert!(bad.iter().any(|(f, _)| *f == "submit_s"));
        assert!(bad.iter().any(|(_, m)| m.contains("surprise")));
        assert!(t.rows[0].job.is_none());
    }

    #[test]
    fn format_tag_is_enforced() {
        assert!(RawTrace::from_json(r#"{"format": "v9", "sites": 1, "rows": []}"#).is_err());
        assert!(RawTrace::from_json("not json").is_err());
        assert!(RawTrace::from_json(r#"{"format": "tetrium-trace/v1", "rows": []}"#).is_err());
    }

    #[test]
    fn csv_and_json_renderings_agree() {
        let t = RawTrace::from_json(MINI).unwrap();
        let csv = t.to_csv();
        let back = RawTrace::from_csv(&csv).unwrap();
        assert_eq!(back, t);
        let json = t.to_json();
        let back = RawTrace::from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_missing_cells_are_none_and_bad_cells_are_recorded() {
        let body = "# tetrium-trace/v1 sites=2\n\
                    job,submit_s,stage,deps,kind,tasks,task_s,input_gb,input_gb_by_site,output_gb\n\
                    a,0.0,0,,map,four,1.0,,1.0;1.0,1.0\n";
        let t = RawTrace::from_csv(body).unwrap();
        assert_eq!(t.rows[0].deps, None);
        assert!(t.rows[0]
            .bad_fields
            .iter()
            .any(|(f, m)| *f == "tasks" && m.contains("four")));
    }

    #[test]
    fn csv_pragma_is_enforced() {
        assert!(RawTrace::from_csv("").is_err());
        assert!(RawTrace::from_csv("job,stage\n").is_err());
        assert!(RawTrace::from_csv("# tetrium-trace/v1\njob\n").is_err());
        assert!(RawTrace::from_csv("# tetrium-trace/v1 sites=2\njob,oops\n").is_err());
    }
}
