//! Constraint-based trace validation: the gate between a raw trace file
//! and the engine.
//!
//! Validation is a fixed pipeline of small, named constraints
//! ([`CONSTRAINTS`]); each scans the whole trace and appends
//! [`Violation`]s carrying a row address and (where it applies) a field
//! name. Nothing short-circuits: a malformed trace comes back with *every*
//! problem it has, so one round-trip with the producer fixes them all.
//! A trace is accepted only when the full pipeline stays silent.
//!
//! The constraint list (DESIGN.md §14):
//!
//! - `schema` — rows parse field-by-field (type/shape errors recorded by
//!   the lenient parser), no unknown fields;
//! - `required` — non-null required fields, with root/non-root rules
//!   (roots carry `input_gb_by_site`, non-roots carry `deps`+`input_gb`);
//! - `non-negative` — byte/duration/count fields are finite, non-negative,
//!   and integral where counts are expected;
//! - `monotone-timestamps` — rows of a job are contiguous and share one
//!   submit time; job submit times never regress across the file;
//! - `topology` — stage indices are dense and ascending per job, deps
//!   point strictly backwards, roots are map stages;
//! - `site-arity` — per-site byte lists match the header's site count;
//! - `byte-conservation` — a non-root stage's declared input equals the
//!   sum of its parents' outputs within a relative tolerance;
//! - `drift` — optional distribution-drift check of input-size and
//!   inter-arrival statistics against a reference [`TraceProfile`].

use super::schema::RawTrace;

/// One constraint violation, addressed to a row (1-based) and field where
/// that is meaningful; whole-trace findings (e.g. drift) carry neither.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which constraint fired (a name from [`CONSTRAINTS`]).
    pub constraint: &'static str,
    /// 1-based row address ([`RawRow::row`]); `None` for whole-trace
    /// findings.
    pub row: Option<usize>,
    /// Offending field, when the violation is narrower than the row.
    pub field: Option<&'static str>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.row, self.field) {
            (Some(r), Some(fl)) => {
                write!(
                    f,
                    "row {r}, field '{fl}' [{}]: {}",
                    self.constraint, self.message
                )
            }
            (Some(r), None) => write!(f, "row {r} [{}]: {}", self.constraint, self.message),
            _ => write!(f, "trace [{}]: {}", self.constraint, self.message),
        }
    }
}

/// Everything the pipeline found, in constraint-then-row order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All violations across all constraints.
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// Whether the trace passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of distinct constraints that fired.
    pub fn distinct_constraints(&self) -> usize {
        let mut names: Vec<&str> = self.violations.iter().map(|v| v.constraint).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace rejected: {} violation(s) across {} constraint(s)",
            self.violations.len(),
            self.distinct_constraints()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Reference statistics a trace can be checked for drift against.
///
/// The profile is deliberately coarse — order statistics of job input
/// sizes and the mean inter-arrival gap — because its job is to catch a
/// *different population* (wrong units, truncated file, synthetic data
/// swapped for production data), not to hypothesis-test the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceProfile {
    /// Median per-job total input in GB.
    pub median_input_gb: f64,
    /// 90th-percentile per-job total input in GB.
    pub p90_input_gb: f64,
    /// Mean gap between consecutive job submits in seconds.
    pub mean_interarrival_s: f64,
    /// Mean stages per job.
    pub mean_stages: f64,
}

impl TraceProfile {
    /// Derives the profile of a trace. Returns `None` when the trace has
    /// no usable job rows (profile checks need at least two jobs).
    pub fn from_trace(trace: &RawTrace) -> Option<Self> {
        let jobs = job_spans(trace);
        if jobs.len() < 2 {
            return None;
        }
        let mut inputs: Vec<f64> = Vec::with_capacity(jobs.len());
        let mut submits: Vec<f64> = Vec::with_capacity(jobs.len());
        let mut stages = 0usize;
        for span in &jobs {
            let rows = &trace.rows[span.clone()];
            stages += rows.len();
            submits.push(rows[0].submit_s.unwrap_or(0.0));
            inputs.push(
                rows.iter()
                    .filter_map(|r| r.input_gb_by_site.as_ref())
                    .map(|b| b.iter().sum::<f64>())
                    .sum(),
            );
        }
        inputs.sort_by(f64::total_cmp);
        let q = |p: f64| inputs[((inputs.len() as f64 - 1.0) * p).round() as usize];
        let gaps: f64 = submits.windows(2).map(|w| (w[1] - w[0]).max(0.0)).sum();
        Some(Self {
            median_input_gb: q(0.5),
            p90_input_gb: q(0.9),
            mean_interarrival_s: gaps / (submits.len() - 1) as f64,
            mean_stages: stages as f64 / jobs.len() as f64,
        })
    }
}

/// Validator knobs.
#[derive(Debug, Clone)]
pub struct ValidatorConfig {
    /// Relative tolerance of the byte-conservation check (declared stage
    /// input vs sum of parent outputs). Real traces are lossy meters, so
    /// the default allows 1% slack.
    pub byte_tolerance: f64,
    /// Reference profile for the drift check; `None` disables it.
    pub profile: Option<TraceProfile>,
    /// Maximum relative deviation from the reference profile before the
    /// drift constraint fires.
    pub max_drift: f64,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        Self {
            byte_tolerance: 0.01,
            profile: None,
            max_drift: 0.5,
        }
    }
}

/// A constraint: scans the trace and appends violations.
pub type ConstraintFn = fn(&RawTrace, &ValidatorConfig, &mut Vec<Violation>);

/// The pipeline, in the order constraints run. Each entry is
/// `(name, check)`; [`validate`] runs them all, unconditionally.
pub const CONSTRAINTS: &[(&str, ConstraintFn)] = &[
    ("schema", check_schema),
    ("required", check_required),
    ("non-negative", check_non_negative),
    ("monotone-timestamps", check_monotone_timestamps),
    ("topology", check_topology),
    ("site-arity", check_site_arity),
    ("byte-conservation", check_byte_conservation),
    ("drift", check_drift),
];

/// Runs the full constraint pipeline.
///
/// # Errors
///
/// The report with **all** violations when any constraint fired.
pub fn validate(trace: &RawTrace, cfg: &ValidatorConfig) -> Result<(), ValidationReport> {
    let mut violations = Vec::new();
    for (_, check) in CONSTRAINTS {
        check(trace, cfg, &mut violations);
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(ValidationReport { violations })
    }
}

fn push(
    out: &mut Vec<Violation>,
    constraint: &'static str,
    row: Option<usize>,
    field: Option<&'static str>,
    message: String,
) {
    out.push(Violation {
        constraint,
        row,
        field,
        message,
    });
}

/// Contiguous row spans per job, in file order. Rows with no job name are
/// skipped (the `required` constraint addresses those).
fn job_spans(trace: &RawTrace) -> Vec<std::ops::Range<usize>> {
    let mut spans: Vec<std::ops::Range<usize>> = Vec::new();
    let mut current: Option<(&str, usize)> = None;
    for (i, r) in trace.rows.iter().enumerate() {
        let Some(name) = r.job.as_deref() else {
            continue;
        };
        match current {
            Some((cur, start)) if cur == name => {
                let _ = start;
            }
            Some((_, start)) => {
                spans.push(start..i);
                current = Some((name, i));
            }
            None => current = Some((name, i)),
        }
    }
    if let Some((_, start)) = current {
        spans.push(start..trace.rows.len());
    }
    spans
}

/// `schema`: surfaces the lenient parser's per-field type errors and
/// rejects a trace with zero rows or zero sites.
fn check_schema(trace: &RawTrace, _cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    if trace.sites == 0 {
        push(out, "schema", None, None, "header declares 0 sites".into());
    }
    if trace.rows.is_empty() {
        push(out, "schema", None, None, "trace has no rows".into());
    }
    for r in &trace.rows {
        for (field, msg) in &r.bad_fields {
            let field = if *field == "row" { None } else { Some(*field) };
            push(out, "schema", Some(r.row), field, msg.clone());
        }
    }
}

/// `required`: non-null required fields, with root/non-root asymmetry.
fn check_required(trace: &RawTrace, _cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    fn missing(out: &mut Vec<Violation>, row: usize, field: &'static str, absent: bool) {
        if absent {
            push(
                out,
                "required",
                Some(row),
                Some(field),
                format!("required field '{field}' is missing or null"),
            );
        }
    }
    for r in &trace.rows {
        missing(
            out,
            r.row,
            "job",
            r.job.as_deref().is_none_or(str::is_empty),
        );
        missing(out, r.row, "submit_s", r.submit_s.is_none());
        missing(out, r.row, "stage", r.stage.is_none());
        missing(out, r.row, "deps", r.deps.is_none());
        missing(out, r.row, "tasks", r.tasks.is_none());
        missing(out, r.row, "task_s", r.task_s.is_none());
        missing(out, r.row, "output_gb", r.output_gb.is_none());
        match r.kind.as_deref() {
            None => missing(out, r.row, "kind", true),
            Some("map" | "reduce") => {}
            Some(other) => push(
                out,
                "required",
                Some(r.row),
                Some("kind"),
                format!("kind must be 'map' or 'reduce', got '{other}'"),
            ),
        }
        // Root rows (explicitly empty deps) read external per-site input;
        // non-roots declare their aggregate input so byte conservation is
        // checkable against the parents.
        match &r.deps {
            Some(d) if d.is_empty() => {
                missing(out, r.row, "input_gb_by_site", r.input_gb_by_site.is_none());
            }
            Some(_) => {
                missing(out, r.row, "input_gb", r.input_gb.is_none());
                if r.input_gb_by_site.is_some() {
                    push(
                        out,
                        "required",
                        Some(r.row),
                        Some("input_gb_by_site"),
                        "only root rows (empty deps) may carry per-site input".into(),
                    );
                }
            }
            None => {}
        }
    }
}

/// `non-negative`: numeric sanity — finite, ≥ 0, integral counts.
fn check_non_negative(trace: &RawTrace, _cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    for r in &trace.rows {
        let mut bad = |field: &'static str, msg: String| {
            push(out, "non-negative", Some(r.row), Some(field), msg);
        };
        let check_scalar = |v: Option<f64>| v.is_some_and(|x| !x.is_finite() || x < 0.0);
        if check_scalar(r.submit_s) {
            bad("submit_s", format!("{:?} is not a finite time", r.submit_s));
        }
        if check_scalar(r.task_s) {
            bad("task_s", format!("{:?} is not a finite duration", r.task_s));
        }
        if check_scalar(r.input_gb) {
            bad(
                "input_gb",
                format!("{:?} is not a finite volume", r.input_gb),
            );
        }
        if check_scalar(r.output_gb) {
            bad(
                "output_gb",
                format!("{:?} is not a finite volume", r.output_gb),
            );
        }
        let check_count = |v: Option<f64>, min: f64| {
            v.is_some_and(|x| !x.is_finite() || x < min || x.fract() != 0.0)
        };
        if check_count(r.tasks, 1.0) {
            bad("tasks", format!("{:?} is not a positive integer", r.tasks));
        }
        if check_count(r.stage, 0.0) {
            bad(
                "stage",
                format!("{:?} is not a non-negative integer", r.stage),
            );
        }
        if let Some(deps) = &r.deps {
            if deps
                .iter()
                .any(|d| !d.is_finite() || *d < 0.0 || d.fract() != 0.0)
            {
                bad("deps", format!("{deps:?} contains a non-index entry"));
            }
        }
        if let Some(by_site) = &r.input_gb_by_site {
            if by_site.iter().any(|v| !v.is_finite() || *v < 0.0) {
                bad(
                    "input_gb_by_site",
                    "contains a negative or non-finite volume".into(),
                );
            }
        }
    }
}

/// `monotone-timestamps`: one submit time per job, non-decreasing across
/// jobs, and no job's rows split by another job's (split rows re-enter
/// `job_spans` as a second span of the same name, caught here).
fn check_monotone_timestamps(trace: &RawTrace, _cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    let spans = job_spans(trace);
    let mut seen: Vec<&str> = Vec::new();
    let mut prev_submit: Option<(f64, usize)> = None;
    for span in &spans {
        let rows = &trace.rows[span.clone()];
        let name = rows[0].job.as_deref().unwrap_or("");
        if seen.contains(&name) {
            push(
                out,
                "monotone-timestamps",
                Some(rows[0].row),
                None,
                format!("rows of job '{name}' are not contiguous"),
            );
        }
        seen.push(name);
        let Some(first) = rows.iter().find_map(|r| r.submit_s) else {
            continue; // `required` already addressed the missing submit.
        };
        for r in rows {
            if let Some(s) = r.submit_s {
                if s != first {
                    push(
                        out,
                        "monotone-timestamps",
                        Some(r.row),
                        Some("submit_s"),
                        format!("job '{name}' has conflicting submit times {first} and {s}"),
                    );
                }
            }
        }
        if let Some((p, prow)) = prev_submit {
            if first < p {
                push(
                    out,
                    "monotone-timestamps",
                    Some(rows[0].row),
                    Some("submit_s"),
                    format!(
                        "submit {first} regresses below {p} (row {prow}); \
                         jobs must arrive in submit order"
                    ),
                );
            }
        }
        prev_submit = Some((first, rows[0].row));
    }
}

/// `topology`: dense ascending stage indices per job, backward deps, map
/// roots.
fn check_topology(trace: &RawTrace, _cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    for span in job_spans(trace) {
        let rows = &trace.rows[span];
        for (pos, r) in rows.iter().enumerate() {
            let Some(stage) = r.stage else { continue };
            if stage.fract() != 0.0 || stage < 0.0 {
                continue; // `non-negative` already addressed it.
            }
            if stage as usize != pos {
                push(
                    out,
                    "topology",
                    Some(r.row),
                    Some("stage"),
                    format!("stage index {stage} at position {pos}; indices must be dense and ascending"),
                );
                continue;
            }
            if let Some(deps) = &r.deps {
                for &d in deps {
                    if d.fract() != 0.0 || d < 0.0 {
                        continue; // `non-negative` already addressed it.
                    }
                    if d >= stage {
                        push(
                            out,
                            "topology",
                            Some(r.row),
                            Some("deps"),
                            format!("dep {d} does not point strictly backwards from stage {stage}"),
                        );
                    }
                }
                if deps.is_empty() && r.kind.as_deref() == Some("reduce") {
                    push(
                        out,
                        "topology",
                        Some(r.row),
                        Some("kind"),
                        "root stages read external input one-to-one and must be 'map'".into(),
                    );
                }
            }
        }
    }
}

/// `site-arity`: per-site byte lists are indexed by the header's sites.
fn check_site_arity(trace: &RawTrace, _cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    for r in &trace.rows {
        if let Some(by_site) = &r.input_gb_by_site {
            if by_site.len() != trace.sites {
                push(
                    out,
                    "site-arity",
                    Some(r.row),
                    Some("input_gb_by_site"),
                    format!(
                        "{} per-site entries, header declares {} sites",
                        by_site.len(),
                        trace.sites
                    ),
                );
            }
        }
    }
}

/// `byte-conservation`: a non-root stage's declared input must equal the
/// sum of its parents' outputs within the relative tolerance.
fn check_byte_conservation(trace: &RawTrace, cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    for span in job_spans(trace) {
        let rows = &trace.rows[span];
        for r in rows {
            let (Some(deps), Some(declared)) = (&r.deps, r.input_gb) else {
                continue;
            };
            if deps.is_empty() {
                continue;
            }
            let mut expected = 0.0;
            let mut complete = true;
            for &d in deps {
                if d.fract() != 0.0 || d < 0.0 || d as usize >= rows.len() {
                    complete = false; // `topology` already addressed it.
                    break;
                }
                match rows[d as usize].output_gb {
                    Some(gb) => expected += gb,
                    None => complete = false, // `required` already addressed it.
                }
            }
            if !complete {
                continue;
            }
            let scale = expected.abs().max(1e-9);
            if ((declared - expected) / scale).abs() > cfg.byte_tolerance {
                push(
                    out,
                    "byte-conservation",
                    Some(r.row),
                    Some("input_gb"),
                    format!(
                        "declared input {declared} GB but parents output {expected} GB \
                         (tolerance {})",
                        cfg.byte_tolerance
                    ),
                );
            }
        }
    }
}

/// `drift`: the trace's population statistics stay within `max_drift`
/// relative deviation of the reference profile.
fn check_drift(trace: &RawTrace, cfg: &ValidatorConfig, out: &mut Vec<Violation>) {
    let Some(reference) = &cfg.profile else {
        return;
    };
    let Some(actual) = TraceProfile::from_trace(trace) else {
        push(
            out,
            "drift",
            None,
            None,
            "drift check configured but the trace has too few jobs to profile".into(),
        );
        return;
    };
    let pairs = [
        (
            "median input GB",
            actual.median_input_gb,
            reference.median_input_gb,
        ),
        ("p90 input GB", actual.p90_input_gb, reference.p90_input_gb),
        (
            "mean interarrival s",
            actual.mean_interarrival_s,
            reference.mean_interarrival_s,
        ),
        (
            "mean stages per job",
            actual.mean_stages,
            reference.mean_stages,
        ),
    ];
    for (what, a, r) in pairs {
        let scale = r.abs().max(1e-9);
        let dev = ((a - r) / scale).abs();
        if dev > cfg.max_drift {
            push(
                out,
                "drift",
                None,
                None,
                format!(
                    "{what} drifted {:.0}% from the reference ({a:.3} vs {r:.3}, \
                     allowed {:.0}%)",
                    dev * 100.0,
                    cfg.max_drift * 100.0
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rows_json: &str) -> RawTrace {
        RawTrace::from_json(&format!(
            r#"{{"format": "tetrium-trace/v1", "sites": 2, "rows": [{rows_json}]}}"#
        ))
        .unwrap()
    }

    const GOOD_ROOT: &str = r#"{"job": "a", "submit_s": 1.0, "stage": 0, "deps": [], "kind": "map",
        "tasks": 4, "task_s": 1.0, "input_gb_by_site": [1.0, 1.0], "output_gb": 1.0}"#;
    const GOOD_REDUCE: &str = r#"{"job": "a", "submit_s": 1.0, "stage": 1, "deps": [0], "kind": "reduce",
        "tasks": 2, "task_s": 1.0, "input_gb": 1.0, "output_gb": 0.1}"#;

    fn fired<'a>(t: &RawTrace, cfg: &ValidatorConfig) -> Vec<Violation> {
        match validate(t, cfg) {
            Ok(()) => Vec::new(),
            Err(r) => r.violations,
        }
    }

    #[test]
    fn clean_trace_passes() {
        let t = trace(&format!("{GOOD_ROOT},{GOOD_REDUCE}"));
        assert!(validate(&t, &ValidatorConfig::default()).is_ok());
    }

    #[test]
    fn missing_required_field_is_row_addressed() {
        let row = r#"{"job": "a", "submit_s": 1.0, "stage": 0, "deps": [], "kind": "map",
            "tasks": 4, "input_gb_by_site": [1.0, 1.0], "output_gb": 1.0}"#;
        let v = fired(&trace(row), &ValidatorConfig::default());
        assert!(v
            .iter()
            .any(|v| v.constraint == "required" && v.row == Some(1) && v.field == Some("task_s")));
    }

    #[test]
    fn timestamp_regression_fires() {
        let late = GOOD_ROOT.replace("\"job\": \"a\"", "\"job\": \"b\"");
        let early = late
            .replace("\"submit_s\": 1.0", "\"submit_s\": 0.5")
            .replace("\"job\": \"b\"", "\"job\": \"c\"");
        let t = trace(&format!("{GOOD_ROOT},{GOOD_REDUCE},{late},{early}"));
        let v = fired(&t, &ValidatorConfig::default());
        assert!(v
            .iter()
            .any(|v| v.constraint == "monotone-timestamps" && v.row == Some(4)));
    }

    #[test]
    fn byte_conservation_violation_fires_within_tolerance_rules() {
        let bad_reduce = GOOD_REDUCE.replace("\"input_gb\": 1.0", "\"input_gb\": 1.5");
        let t = trace(&format!("{GOOD_ROOT},{bad_reduce}"));
        let v = fired(&t, &ValidatorConfig::default());
        assert!(v
            .iter()
            .any(|v| v.constraint == "byte-conservation" && v.row == Some(2)));
        // A looser tolerance accepts the same trace.
        let loose = ValidatorConfig {
            byte_tolerance: 0.6,
            ..ValidatorConfig::default()
        };
        assert!(validate(&t, &loose).is_ok());
    }

    #[test]
    fn drift_fires_only_with_a_profile() {
        let b_root = GOOD_ROOT
            .replace("\"job\": \"a\"", "\"job\": \"b\"")
            .replace("\"submit_s\": 1.0", "\"submit_s\": 2.0");
        let t = trace(&format!("{GOOD_ROOT},{GOOD_REDUCE},{b_root}"));
        assert!(validate(&t, &ValidatorConfig::default()).is_ok());
        let profile = TraceProfile {
            median_input_gb: 2000.0,
            p90_input_gb: 4000.0,
            mean_interarrival_s: 1.0,
            mean_stages: 1.5,
        };
        let cfg = ValidatorConfig {
            profile: Some(profile),
            ..ValidatorConfig::default()
        };
        let v = fired(&t, &cfg);
        assert!(v.iter().any(|v| v.constraint == "drift" && v.row.is_none()));
        // The trace's own profile never drifts from itself.
        let own = TraceProfile::from_trace(&t).unwrap();
        let cfg = ValidatorConfig {
            profile: Some(own),
            ..ValidatorConfig::default()
        };
        assert!(validate(&t, &cfg).is_ok());
    }

    #[test]
    fn every_constraint_is_reported_not_just_the_first() {
        // One row violating several constraints at once: bad kind, negative
        // duration, short site list, float task count.
        let row = r#"{"job": "a", "submit_s": 1.0, "stage": 0, "deps": [], "kind": "mop",
            "tasks": 2.5, "task_s": -1.0, "input_gb_by_site": [1.0], "output_gb": 1.0}"#;
        let v = fired(&trace(row), &ValidatorConfig::default());
        let constraints: Vec<&str> = v.iter().map(|v| v.constraint).collect();
        assert!(constraints.contains(&"required"), "{v:?}");
        assert!(constraints.contains(&"non-negative"), "{v:?}");
        assert!(constraints.contains(&"site-arity"), "{v:?}");
        assert!(v.iter().all(|v| v.row == Some(1)));
    }

    #[test]
    fn report_display_lists_rows() {
        let row = r#"{"job": "a", "submit_s": 1.0, "stage": 0, "deps": [], "kind": "map",
            "tasks": 4, "task_s": 1.0, "input_gb_by_site": [1.0], "output_gb": 1.0}"#;
        let err = validate(&trace(row), &ValidatorConfig::default()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("row 1"), "{text}");
        assert!(text.contains("site-arity"), "{text}");
    }
}
