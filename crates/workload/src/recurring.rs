//! Recurring log-analytics workload (the paper's motivating use case).
//!
//! §1–2 motivate Tetrium with periodic operational analytics: Skype call-
//! quality dashboards and Bing session-log queries that re-run the same DAG
//! every few minutes over freshly generated data. Two properties matter for
//! scheduling: the DAG is fixed across instances, and the *data
//! distribution rotates with the sun* — §2.1: "more user data is likely to
//! be present on sites where it is working hours".
//!
//! [`recurring_dashboard_jobs`] generates such a stream: one query template
//! instantiated every `period_secs`, with per-site input volumes modulated
//! by a diurnal phase that advances a little between instances.

use crate::key_skew_weights;
use rand::Rng;
use tetrium_cluster::{Cluster, DataDistribution};
use tetrium_jobs::{Job, JobId, Stage};

/// Parameters of the recurring dashboard stream.
#[derive(Debug, Clone)]
pub struct RecurringParams {
    /// Seconds between instances of the query.
    pub period_secs: f64,
    /// Mean total input per instance in GB.
    pub input_gb: f64,
    /// Peak-to-trough ratio of the diurnal modulation (≥ 1; the Skype logs
    /// of §2.1 vary by up to 22×).
    pub diurnal_peak_ratio: f64,
    /// Fraction of a full day the data pattern advances between instances.
    pub phase_step: f64,
    /// Mean compute seconds per task.
    pub task_secs: f64,
    /// Tasks per GB of input (~10 for 100 MB partitions).
    pub tasks_per_gb: f64,
}

impl Default for RecurringParams {
    fn default() -> Self {
        Self {
            period_secs: 120.0,
            input_gb: 20.0,
            diurnal_peak_ratio: 8.0,
            phase_step: 0.02,
            task_secs: 2.0,
            tasks_per_gb: 10.0,
        }
    }
}

/// Generates `n_instances` of a fixed dashboard DAG whose input follows the
/// sun around the cluster's sites.
pub fn recurring_dashboard_jobs(
    cluster: &Cluster,
    n_instances: usize,
    params: &RecurringParams,
    rng: &mut impl Rng,
) -> Vec<Job> {
    let n = cluster.len();
    // Fixed "timezone" per site: where each site sits in the diurnal cycle.
    let zones: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    // Fixed template shape for every instance.
    let agg_ratio = rng.gen_range(0.2..0.5);
    let n_reduce_frac: f64 = rng.gen_range(0.3..0.6);

    (0..n_instances)
        .map(|i| {
            let phase = i as f64 * params.phase_step;
            let input = diurnal_input(&zones, phase, params);
            let n_map = ((params.input_gb * params.tasks_per_gb).round() as usize).clamp(4, 400);
            let n_red = ((n_map as f64 * n_reduce_frac).round() as usize).max(2);
            let stages = vec![
                Stage::root_map(input, n_map, params.task_secs, agg_ratio),
                Stage::reduce(vec![0], n_red, params.task_secs * 0.6, 0.1)
                    .with_task_weights(key_skew_weights(n_red, 0.8, rng)),
                // Dashboard rollup: tiny final aggregate.
                Stage::reduce(vec![1], 2, 0.3, 0.02),
            ];
            Job::new(
                JobId(i),
                format!("dashboard-{i:03}"),
                i as f64 * params.period_secs,
                stages,
            )
        })
        .collect()
}

/// Per-site input volumes under a raised-cosine diurnal curve at `phase`
/// (fraction of a day), normalized to the configured total.
fn diurnal_input(zones: &[f64], phase: f64, params: &RecurringParams) -> DataDistribution {
    let trough = 1.0 / params.diurnal_peak_ratio.max(1.0);
    let weights: Vec<f64> = zones
        .iter()
        .map(|z| {
            let t = ((z + phase).fract()) * std::f64::consts::TAU;
            // Raised cosine in [trough, 1].
            trough + (1.0 - trough) * 0.5 * (1.0 + t.cos())
        })
        .collect();
    let sum: f64 = weights.iter().sum();
    DataDistribution::new(
        weights
            .into_iter()
            .map(|w| w / sum * params.input_gb)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::{Site, SiteId};

    fn cluster() -> Cluster {
        Cluster::new(
            (0..6)
                .map(|i| Site::new(format!("s{i}"), 8, 0.1, 0.1))
                .collect(),
        )
    }

    #[test]
    fn instances_share_a_template_but_rotate_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let jobs = recurring_dashboard_jobs(&cluster(), 20, &RecurringParams::default(), &mut rng);
        assert_eq!(jobs.len(), 20);
        // Fixed DAG shape across instances.
        for j in &jobs {
            assert_eq!(j.num_stages(), 3);
            assert_eq!(j.total_tasks(), jobs[0].total_tasks());
        }
        // Arrivals are periodic.
        assert!((jobs[1].arrival - jobs[0].arrival - 120.0).abs() < 1e-9);
        // The heaviest site changes over the stream (the sun moves).
        let heaviest = |j: &Job| -> usize {
            let d = j.stages[0].input.as_ref().unwrap();
            (0..6)
                .max_by(|&a, &b| d.at(SiteId(a)).total_cmp(&d.at(SiteId(b))))
                .unwrap()
        };
        let firsts = heaviest(&jobs[0]);
        assert!(
            jobs.iter().any(|j| heaviest(j) != firsts),
            "data never rotated"
        );
        // Every instance carries the configured volume.
        for j in &jobs {
            assert!((j.input_gb() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diurnal_ratio_is_respected() {
        let params = RecurringParams {
            diurnal_peak_ratio: 10.0,
            ..RecurringParams::default()
        };
        let zones: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        let d = diurnal_input(&zones, 0.0, &params);
        let max = (0..8).map(|i| d.at(SiteId(i))).fold(0.0f64, f64::max);
        let min = (0..8)
            .map(|i| d.at(SiteId(i)))
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 4.0, "spread {}", max / min);
        assert!(max / min <= 10.0 + 1e-9);
    }
}
