//! Scenario serialization: save and reload cluster + workload bundles.
//!
//! The paper's simulator is driven from a recorded production trace; this
//! module gives the reproduction the same replayability — a generated
//! scenario can be frozen to JSON, shared, and re-run bit-identically
//! (given the same engine seed).

use serde::{Deserialize, Serialize};
use std::path::Path;
use tetrium_cluster::Cluster;
use tetrium_jobs::Job;

/// A frozen simulation scenario: the cluster and the job trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form description (generator, parameters, seed).
    pub description: String,
    /// The cluster configuration.
    pub cluster: Cluster,
    /// Jobs in arrival order.
    pub jobs: Vec<Job>,
}

/// Errors from scenario IO.
#[derive(Debug)]
pub enum ScenarioError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Parse(serde_json::Error),
    /// Structurally invalid contents (e.g. jobs not matching the cluster).
    Invalid(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "scenario io error: {e}"),
            ScenarioError::Parse(e) => write!(f, "scenario parse error: {e}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        ScenarioError::Parse(e)
    }
}

impl Scenario {
    /// Bundles a cluster and jobs after validating they belong together.
    pub fn new(
        description: impl Into<String>,
        cluster: Cluster,
        jobs: Vec<Job>,
    ) -> Result<Self, ScenarioError> {
        let s = Self {
            version: 1,
            description: description.into(),
            cluster,
            jobs,
        };
        s.validate()?;
        Ok(s)
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.version != 1 {
            return Err(ScenarioError::Invalid(format!(
                "unsupported version {}",
                self.version
            )));
        }
        for job in &self.jobs {
            if !job.matches_cluster(&self.cluster) {
                return Err(ScenarioError::Invalid(format!(
                    "job {} input does not cover the cluster's {} sites",
                    job.id,
                    self.cluster.len()
                )));
            }
        }
        let mut ids: Vec<_> = self.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.jobs.len() {
            return Err(ScenarioError::Invalid("duplicate job ids".into()));
        }
        Ok(())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, ScenarioError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses and validates a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let s: Scenario = serde_json::from_str(json)?;
        s.validate()?;
        Ok(s)
    }

    /// Writes the scenario to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads and validates a scenario from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trace_like_jobs, TraceParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::Site;

    fn scenario() -> Scenario {
        let cluster = Cluster::new(vec![
            Site::new("a", 8, 1.0, 1.0),
            Site::new("b", 4, 0.5, 0.5),
        ]);
        let mut rng = StdRng::seed_from_u64(9);
        let jobs = trace_like_jobs(&cluster, 4, &TraceParams::default(), &mut rng);
        Scenario::new("test scenario", cluster, jobs).unwrap()
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let s = scenario();
        let back = Scenario::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(back.jobs.len(), s.jobs.len());
        for (a, b) in s.jobs.iter().zip(&back.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.num_stages(), b.num_stages());
            assert_eq!(a.input_gb(), b.input_gb());
        }
        assert_eq!(back.cluster, s.cluster);
    }

    #[test]
    fn file_round_trip() {
        let s = scenario();
        let path = std::env::temp_dir().join("tetrium_scenario_test.json");
        s.save(&path).unwrap();
        let back = Scenario::load(&path).unwrap();
        assert_eq!(back.description, "test scenario");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_cluster_mismatch() {
        let s = scenario();
        let small = Cluster::new(vec![Site::new("x", 1, 1.0, 1.0)]);
        assert!(Scenario::new("bad", small, s.jobs).is_err());
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut s = scenario();
        let dup = s.jobs[0].clone();
        s.jobs.push(dup);
        assert!(s.validate().is_err());
    }
}
