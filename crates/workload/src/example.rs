//! The paper's worked examples (§2.2, Fig 3/4).

use tetrium_cluster::{Cluster, DataDistribution, Site};
use tetrium_jobs::{Job, JobId, Stage};

/// The 3-site setup of Figure 4: slots (40, 10, 20), uplinks
/// (5, 1, 2) GB/s, downlinks (5, 1, 5) GB/s.
pub fn fig4_cluster() -> Cluster {
    Cluster::new(vec![
        Site::new("site-1", 40, 5.0, 5.0),
        Site::new("site-2", 10, 1.0, 1.0),
        Site::new("site-3", 20, 2.0, 5.0),
    ])
}

/// The Fig 3/4 job: input (20, 30, 50) GB, 1000 map tasks of 2 s (100 MB
/// partitions), intermediate data half of input, 500 reduce tasks of 1 s.
pub fn fig4_job() -> Job {
    Job::map_reduce(
        JobId(0),
        "fig3-worked-example",
        0.0,
        DataDistribution::new(vec![20.0, 30.0, 50.0]),
        1000,
        2.0,
        0.5,
        500,
        1.0,
    )
}

/// The two-job ordering example of §2.2: three sites with 3 slots and
/// 1 GB/s each; job 1 has (0, 1, 2) tasks of input, job 2 has (2, 4, 6);
/// map-only, 1 s tasks, 100 MB partitions.
pub fn two_job_example() -> (Cluster, Vec<Job>) {
    let cluster = Cluster::new(vec![
        Site::new("s1", 3, 1.0, 1.0),
        Site::new("s2", 3, 1.0, 1.0),
        Site::new("s3", 3, 1.0, 1.0),
    ]);
    let job1 = Job::new(
        JobId(0),
        "two-job-example-1",
        0.0,
        vec![Stage::root_map(
            DataDistribution::new(vec![0.0, 0.1, 0.2]),
            3,
            1.0,
            0.0,
        )],
    );
    let job2 = Job::new(
        JobId(1),
        "two-job-example-2",
        0.0,
        vec![Stage::root_map(
            DataDistribution::new(vec![0.2, 0.4, 0.6]),
            12,
            1.0,
            0.0,
        )],
    );
    (cluster, vec![job1, job2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_match_paper() {
        let c = fig4_cluster();
        assert_eq!(c.total_slots(), 70);
        let j = fig4_job();
        assert_eq!(j.total_tasks(), 1500);
        assert!((j.input_gb() - 100.0).abs() < 1e-12);
        assert!((j.expected_intermediate_gb() - 50.0).abs() < 1e-12);
        assert!(j.matches_cluster(&c));
    }

    #[test]
    fn two_job_example_shapes() {
        let (c, jobs) = two_job_example();
        assert_eq!(c.len(), 3);
        assert_eq!(jobs[0].total_tasks(), 3);
        assert_eq!(jobs[1].total_tasks(), 12);
        assert!(jobs.iter().all(|j| j.matches_cluster(&c)));
    }
}
