//! Substrate-scale presets: clusters and workloads for 100–1000-site
//! sweeps.
//!
//! The paper's deployments top out at 30 sites, but the ROADMAP's
//! north star ("thousands of sites") needs a reproducible way to exercise
//! the sparse LP and waterfiller substrate at scale. [`ScalePreset`]
//! packages a Zipf-skewed cluster with trace-like workload parameters
//! tuned so a fig5-style sweep finishes in minutes even at 1000 sites:
//! inputs are concentrated (the per-stage LP still sees every site, but
//! task counts stay bounded), and stage chains are short.
//!
//! The `scale_1000` bench binary drives this via its `--sites N` flag
//! (see README); [`sites_from_args`] implements the flag parsing so every
//! scale binary spells it identically.

use crate::trace::{trace_like_jobs, TraceParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium_cluster::{zipf_cluster, Cluster};
use tetrium_jobs::Job;

/// A scale-sweep preset: cluster plus calibrated workload parameters.
#[derive(Debug, Clone)]
pub struct ScalePreset {
    /// Number of sites in the preset cluster.
    pub sites: usize,
    /// Zipf-skewed cluster (slot and bandwidth exponents 1.2 — a few
    /// capable sites, a long tail, as in the 50-site trace preset).
    pub cluster: Cluster,
    /// Trace-workload parameters scaled for sweep-in-minutes runs.
    pub params: TraceParams,
}

impl ScalePreset {
    /// Builds the preset for `sites` sites. The same `(sites, seed)` pair
    /// always yields the same cluster and parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sites < 2` (a WAN needs at least two sites).
    pub fn new(sites: usize, seed: u64) -> Self {
        assert!(sites >= 2, "a scale preset needs at least 2 sites");
        let mut rng = StdRng::seed_from_u64(seed);
        // ~4 slots per site on average: with Zipf-skewed inputs the busy
        // sites are compute-bound, so placement (not just locality) decides
        // response time — the regime where the paper's trends manifest.
        let cluster = zipf_cluster(sites, 1.2, 1.2, 4 * sites, &mut rng);
        let params = TraceParams {
            median_input_gb: 40.0,
            mean_interarrival_secs: 20.0,
            mean_task_secs: 20.0,
            tasks_per_gb: 4.0,
            max_tasks: 150,
            stages: (2, 3),
            ..TraceParams::default()
        };
        Self {
            sites,
            cluster,
            params,
        }
    }

    /// Generates `count` trace-like jobs over the preset cluster.
    pub fn jobs(&self, count: usize, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        trace_like_jobs(&self.cluster, count, &self.params, &mut rng)
    }
}

/// Parses the `--sites N` flag (both `--sites 1000` and `--sites=1000`)
/// from the process arguments, falling back to `default`.
///
/// # Panics
///
/// Panics when the flag is present but its value is missing or not a
/// positive integer — a silent fallback would make a mistyped sweep look
/// like the default one.
pub fn sites_from_args(default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--sites" {
            Some(args.next().unwrap_or_else(|| {
                panic!("--sites requires a value");
            }))
        } else {
            a.strip_prefix("--sites=").map(str::to_owned)
        };
        if let Some(v) = value {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("invalid --sites value: {v:?}"));
            assert!(n >= 2, "--sites needs at least 2 sites");
            return n;
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_deterministic() {
        let a = ScalePreset::new(100, 9);
        let b = ScalePreset::new(100, 9);
        assert_eq!(a.cluster.len(), 100);
        for ((_, x), (_, y)) in a.cluster.iter().zip(b.cluster.iter()) {
            assert_eq!(x.slots, y.slots);
            assert_eq!(x.up_gbps.to_bits(), y.up_gbps.to_bits());
        }
        let ja = a.jobs(3, 11);
        let jb = b.jobs(3, 11);
        assert_eq!(ja.len(), jb.len());
        assert_eq!(
            ja.iter().map(Job::total_tasks).collect::<Vec<_>>(),
            jb.iter().map(Job::total_tasks).collect::<Vec<_>>()
        );
    }

    #[test]
    fn thousand_site_preset_builds_quickly() {
        let p = ScalePreset::new(1000, 9);
        assert_eq!(p.cluster.len(), 1000);
        assert!(p.cluster.iter().all(|(_, s)| s.slots >= 1));
    }
}
