//! TPC-DS-like decision-support workload (§6.1 workload (a)).
//!
//! The paper characterizes these queries as CPU- and IO-heavy with long
//! sequences of 6–16 dependent stages. The generator builds such chains:
//! one or two scan roots (joined by an early shuffle when there are two),
//! followed by alternating shuffle/aggregate stages whose data volume
//! shrinks as the query narrows — matching the observation in §6.3.3 that
//! most cross-site traffic happens in the first few stages.

use crate::{key_skew_weights, poisson_arrivals, skewed_input};
use rand::Rng;
use tetrium_cluster::Cluster;
use tetrium_jobs::{Job, JobId, Stage};

/// Generates `n_jobs` TPC-DS-like jobs over `cluster`.
///
/// `mean_interarrival_secs` spaces Poisson arrivals (0 = all at time 0);
/// `scale_gb` is the mean input size of the fact table.
pub fn tpcds_like_jobs(
    cluster: &Cluster,
    n_jobs: usize,
    mean_interarrival_secs: f64,
    scale_gb: f64,
    rng: &mut impl Rng,
) -> Vec<Job> {
    let arrivals = if mean_interarrival_secs > 0.0 {
        poisson_arrivals(n_jobs, mean_interarrival_secs, 0.0, rng)
    } else {
        vec![0.0; n_jobs]
    };
    (0..n_jobs)
        .map(|i| tpcds_like_job(cluster, JobId(i), arrivals[i], scale_gb, rng))
        .collect()
}

/// Generates one TPC-DS-like job.
pub fn tpcds_like_job(
    cluster: &Cluster,
    id: JobId,
    arrival: f64,
    scale_gb: f64,
    rng: &mut impl Rng,
) -> Job {
    let n_stages = rng.gen_range(6..=16usize);
    let two_tables = rng.gen_bool(0.6);
    let input_gb = scale_gb * rng.gen_range(0.5..2.0);
    let skew = rng.gen_range(0.3..2.0);
    // ~100 MB partitions, bounded so simulations stay tractable.
    let tasks_for = |gb: f64| ((gb * 10.0).round() as usize).clamp(4, 400);

    let mut stages: Vec<Stage> = Vec::with_capacity(n_stages);
    // Scan roots: CPU-heavy map stages with selectivity < 1.
    let fact_gb = if two_tables { input_gb * 0.8 } else { input_gb };
    let fact = skewed_input(cluster, fact_gb, skew, rng);
    stages.push(Stage::root_map(
        fact,
        tasks_for(fact_gb),
        rng.gen_range(1.5..4.0),
        rng.gen_range(0.4..1.0),
    ));
    let mut frontier = vec![0usize];
    if two_tables {
        let dim_gb = input_gb * 0.2;
        let dim = skewed_input(cluster, dim_gb, skew, rng);
        stages.push(Stage::root_map(
            dim,
            tasks_for(dim_gb),
            rng.gen_range(1.0..2.0),
            rng.gen_range(0.5..1.0),
        ));
        frontier.push(1);
    }
    // Chain of shuffles; volume decays stage over stage.
    let mut est_gb: f64 = input_gb * 0.7;
    while stages.len() < n_stages {
        let idx = stages.len();
        let last = stages.len() + 1 == n_stages;
        let ratio = if last {
            rng.gen_range(0.01..0.1)
        } else if idx <= 3 {
            rng.gen_range(0.5..1.3) // Early joins can grow data.
        } else {
            rng.gen_range(0.1..0.6)
        };
        let mut stage = Stage::reduce(
            frontier.clone(),
            tasks_for(est_gb).max(4),
            rng.gen_range(0.8..2.5),
            ratio,
        );
        if rng.gen_bool(0.3) {
            let w = key_skew_weights(stage.num_tasks, rng.gen_range(0.5..1.5), rng);
            stage = stage.with_task_weights(w);
        }
        est_gb = (est_gb * ratio).max(0.05);
        frontier = vec![idx];
        stages.push(stage);
    }
    Job::new(id, format!("tpcds-q{}", id.index()), arrival, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::Site;

    fn cluster() -> Cluster {
        Cluster::new(vec![
            Site::new("a", 16, 0.125, 0.125),
            Site::new("b", 4, 0.0125, 0.025),
            Site::new("c", 8, 0.1, 0.1),
        ])
    }

    #[test]
    fn stage_counts_in_paper_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let jobs = tpcds_like_jobs(&cluster(), 40, 0.0, 5.0, &mut rng);
        assert_eq!(jobs.len(), 40);
        for j in &jobs {
            assert!(
                (6..=16).contains(&j.num_stages()),
                "job has {} stages",
                j.num_stages()
            );
            assert!(j.matches_cluster(&cluster()));
            assert!(j.input_gb() > 0.0);
        }
        // The family must actually span long chains.
        assert!(jobs.iter().any(|j| j.num_stages() >= 12));
    }

    #[test]
    fn volume_decays_toward_the_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let j = tpcds_like_job(&cluster(), JobId(0), 0.0, 10.0, &mut rng);
        let outs = j.expected_stage_outputs_gb();
        let last = *outs.last().unwrap();
        let peak = outs.iter().cloned().fold(0.0f64, f64::max);
        assert!(last < peak * 0.5, "tail {last} vs peak {peak}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tpcds_like_jobs(&cluster(), 5, 10.0, 5.0, &mut StdRng::seed_from_u64(3));
        let b = tpcds_like_jobs(&cluster(), 5, 10.0, 5.0, &mut StdRng::seed_from_u64(3));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.num_stages(), y.num_stages());
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.input_gb(), y.input_gb());
        }
    }
}
