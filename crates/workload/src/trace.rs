//! Production-trace-like workload (§6.1 trace-driven simulations).
//!
//! The paper's large-scale simulations are driven by a proprietary
//! production trace carrying job arrivals, per-job DAGs and task counts,
//! input/output sizes, data distribution, stragglers and estimation error.
//! We do not have the trace, so this generator synthesizes a population
//! with the same controllable characteristics; every knob corresponds to an
//! axis the paper reports gains against (Fig 12).

use crate::{key_skew_weights, poisson_arrivals, skewed_input};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Pareto};
use tetrium_cluster::Cluster;
use tetrium_jobs::{Job, JobId, Stage};

/// Tunable characteristics of the synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceParams {
    /// Mean inter-arrival time in seconds (0 = batch arrival at t=0).
    pub mean_interarrival_secs: f64,
    /// Median job input size in GB (sizes are log-normal around this).
    pub median_input_gb: f64,
    /// Range of the Zipf exponent controlling input skew across sites
    /// (sampled per job; 0 = uniform). Drives Fig 12(b).
    pub input_skew_exponent: (f64, f64),
    /// Range of per-stage output ratios. Long chains still span the whole
    /// intermediate/input spectrum of Fig 12(a) because the aggregate
    /// intermediate volume sums over stages; per-stage ratios stay mostly
    /// below 1 ("the size of intermediate data usually drops quickly in
    /// data analytics jobs", §6.3.3). An occasional early join stage may
    /// exceed 1 (see `early_growth_prob`).
    pub output_ratio: (f64, f64),
    /// Probability that the second stage is a data-growing join (ratio
    /// sampled in 1.0..1.5).
    pub early_growth_prob: f64,
    /// Probability that a reduce stage has key skew, and its severity
    /// (drives Fig 12(c)).
    pub key_skew_prob: f64,
    /// Zipf severity of the key skew when present.
    pub key_skew_severity: f64,
    /// Range of stages per job.
    pub stages: (usize, usize),
    /// Mean task compute seconds (per-stage values are sampled around it).
    pub mean_task_secs: f64,
    /// Tasks per GB of stage input (~10 for the paper's 100 MB partitions).
    pub tasks_per_gb: f64,
    /// Upper bound on tasks per stage (keeps simulations tractable).
    pub max_tasks: usize,
}

impl Default for TraceParams {
    fn default() -> Self {
        Self {
            mean_interarrival_secs: 15.0,
            median_input_gb: 20.0,
            input_skew_exponent: (0.0, 2.5),
            output_ratio: (0.05, 0.9),
            early_growth_prob: 0.25,
            key_skew_prob: 0.35,
            key_skew_severity: 1.2,
            stages: (2, 12),
            mean_task_secs: 2.0,
            tasks_per_gb: 8.0,
            max_tasks: 500,
        }
    }
}

/// Generates `n_jobs` trace-like jobs over `cluster`.
pub fn trace_like_jobs(
    cluster: &Cluster,
    n_jobs: usize,
    params: &TraceParams,
    rng: &mut impl Rng,
) -> Vec<Job> {
    let arrivals = if params.mean_interarrival_secs > 0.0 {
        poisson_arrivals(n_jobs, params.mean_interarrival_secs, 0.0, rng)
    } else {
        vec![0.0; n_jobs]
    };
    (0..n_jobs)
        .map(|i| trace_like_job(cluster, JobId(i), arrivals[i], params, rng))
        .collect()
}

/// Generates one trace-like job.
pub fn trace_like_job(
    cluster: &Cluster,
    id: JobId,
    arrival: f64,
    params: &TraceParams,
    rng: &mut impl Rng,
) -> Job {
    // Log-normal input sizes: many small jobs, a heavy tail of large ones.
    let size_dist = LogNormal::new(params.median_input_gb.ln(), 0.8).expect("valid lognormal");
    let input_gb: f64 = size_dist
        .sample(rng)
        .clamp(0.5, params.median_input_gb * 20.0);
    let skew = rng.gen_range(params.input_skew_exponent.0..=params.input_skew_exponent.1);
    let n_stages = rng.gen_range(params.stages.0..=params.stages.1);
    // Heavy-tailed task counts (Pareto), scaled to the stage's data volume.
    let pareto = Pareto::new(1.0, 1.5).expect("valid pareto");
    let per_gb = params.tasks_per_gb;
    let max_tasks = params.max_tasks;
    let tasks_for = move |gb: f64, rng: &mut dyn rand::RngCore| -> usize {
        let burst: f64 = pareto.sample(&mut *rng);
        ((gb * per_gb * burst).round() as usize).clamp(2, max_tasks)
    };

    let mut stages: Vec<Stage> = Vec::with_capacity(n_stages);
    let input = skewed_input(cluster, input_gb, skew, rng);
    let first_ratio = rng.gen_range(params.output_ratio.0..=params.output_ratio.1);
    let n0 = tasks_for(input_gb, rng);
    stages.push(Stage::root_map(
        input,
        n0,
        params.mean_task_secs * rng.gen_range(0.5..2.0),
        first_ratio,
    ));
    let mut est_gb = input_gb * first_ratio;
    for idx in 1..n_stages {
        let last = idx + 1 == n_stages;
        let ratio = if last {
            rng.gen_range(0.02..0.15)
        } else if idx == 1 && rng.gen_bool(params.early_growth_prob) {
            // An early join can grow the data before the chain narrows.
            rng.gen_range(1.0..1.5)
        } else {
            rng.gen_range(params.output_ratio.0..=params.output_ratio.1)
        };
        let n = tasks_for(est_gb.max(0.2), rng);
        let mut stage = Stage::reduce(
            vec![idx - 1],
            n,
            params.mean_task_secs * rng.gen_range(0.5..2.0),
            ratio,
        );
        if rng.gen_bool(params.key_skew_prob) {
            let w = key_skew_weights(stage.num_tasks, params.key_skew_severity, rng);
            stage = stage.with_task_weights(w);
        }
        est_gb = (est_gb * ratio).max(0.05);
        stages.push(stage);
    }
    Job::new(id, format!("trace-{}", id.index()), arrival, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::Site;

    fn cluster() -> Cluster {
        // Enough sites that high-skew CV buckets (> 1.0) are reachable.
        Cluster::new(
            (0..8)
                .map(|i| Site::new(format!("s{i}"), 25 * (i + 1), 0.1, 0.1))
                .collect(),
        )
    }

    #[test]
    fn population_spans_fig12_axes() {
        let mut rng = StdRng::seed_from_u64(1);
        let jobs = trace_like_jobs(&cluster(), 120, &TraceParams::default(), &mut rng);
        // Intermediate/input ratio spans low and high buckets.
        let ratios: Vec<f64> = jobs
            .iter()
            .map(|j| j.expected_intermediate_gb() / j.input_gb().max(1e-9))
            .collect();
        assert!(ratios.iter().any(|&r| r < 0.2));
        assert!(ratios.iter().any(|&r| r > 1.0));
        // Input skew spans low and high CV buckets.
        let skews: Vec<f64> = jobs
            .iter()
            .flat_map(|j| j.stages.iter().filter_map(|s| s.input.as_ref()))
            .map(|d| d.skew_cv())
            .collect();
        assert!(skews.iter().any(|&s| s < 0.5));
        assert!(skews.iter().any(|&s| s > 1.0));
        // Some reduce stages carry key skew.
        assert!(jobs
            .iter()
            .any(|j| j.stages.iter().any(|s| s.task_skew_cv() > 0.0)));
    }

    #[test]
    fn heavy_tail_in_task_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let jobs = trace_like_jobs(&cluster(), 100, &TraceParams::default(), &mut rng);
        let counts: Vec<usize> = jobs.iter().map(|j| j.total_tasks()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 20 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn respects_stage_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = TraceParams {
            stages: (3, 5),
            ..TraceParams::default()
        };
        for j in trace_like_jobs(&cluster(), 30, &params, &mut rng) {
            assert!((3..=5).contains(&j.num_stages()));
        }
    }
}
