//! Workload generators and the paper's worked examples.
//!
//! The evaluation runs three workload families (§6.1):
//!
//! - [`tpcds`]: TPC-DS-like decision-support queries — long chains of 6–16
//!   dependent stages, CPU/IO heavy, lots of intermediate shuffle;
//! - [`bigdata`]: AMPLab Big Data Benchmark-like queries — short jobs of
//!   2–5 stages mixing scans, joins and aggregations;
//! - [`trace`]: production-trace-like jobs — Poisson arrivals, heavy-tailed
//!   task counts and input sizes, Zipf-skewed data placement, optional
//!   reduce-key skew — parameterized on exactly the axes Fig 12
//!   characterizes gains against (intermediate/input ratio, input skew CV,
//!   intermediate skew CV).
//!
//! [`example`] reconstructs the 3-site illustrative setup of Fig 3/4 and
//! the two-job ordering example of §2.2, which the integration tests pin to
//! the paper's numbers.

pub mod bigdata;
pub mod example;
pub mod ingest;
pub mod io;
pub mod recurring;
pub mod scale;
pub mod tpcds;
pub mod trace;

pub use bigdata::bigdata_like_jobs;
pub use example::{fig4_cluster, fig4_job, two_job_example};
pub use ingest::{
    scenario_from_trace, trace_from_jobs, IngestError, RawTrace, TraceProfile, ValidationReport,
    ValidatorConfig,
};
pub use io::{Scenario, ScenarioError};
pub use recurring::{recurring_dashboard_jobs, RecurringParams};
pub use scale::{sites_from_args, ScalePreset};
pub use tpcds::tpcds_like_jobs;
pub use trace::{trace_like_jobs, TraceParams};

use rand::Rng;
use rand_distr::{Distribution, Zipf};
use tetrium_cluster::{Cluster, DataDistribution};

/// Spreads `total_gb` across the cluster's sites with Zipf-skewed weights
/// (exponent 0 = uniform) under a random site permutation, mirroring the
/// skewed data generation of §2.1 (Skype logs vary 22× across sites).
pub fn skewed_input(
    cluster: &Cluster,
    total_gb: f64,
    zipf_exponent: f64,
    rng: &mut impl Rng,
) -> DataDistribution {
    let n = cluster.len();
    let mut weights: Vec<f64> = if zipf_exponent <= 0.0 {
        vec![1.0; n]
    } else {
        (1..=n)
            .map(|r| 1.0 / (r as f64).powf(zipf_exponent))
            .collect()
    };
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    let sum: f64 = weights.iter().sum();
    DataDistribution::new(weights.into_iter().map(|w| w / sum * total_gb).collect())
}

/// Samples reduce-key skew weights for `n` tasks: a few heavy keys and a
/// long tail, via a Zipf draw per task (the source of intermediate-data
/// skew in Fig 12c).
pub fn key_skew_weights(n: usize, severity: f64, rng: &mut impl Rng) -> Vec<f64> {
    if severity <= 0.0 || n < 2 {
        return vec![1.0; n.max(1)];
    }
    let z = Zipf::new(1000, severity.clamp(0.05, 3.0)).expect("valid zipf");
    (0..n).map(|_| 1.0 + z.sample(rng)).collect()
}

/// Poisson-process arrival times: exponential inter-arrivals with the given
/// mean, starting at `start`.
pub fn poisson_arrivals(
    n: usize,
    mean_interarrival_secs: f64,
    start: f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert!(mean_interarrival_secs >= 0.0);
    let mut t = start;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -mean_interarrival_secs * u.ln();
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::Site;

    fn cluster4() -> Cluster {
        Cluster::new(vec![
            Site::new("a", 4, 1.0, 1.0),
            Site::new("b", 4, 1.0, 1.0),
            Site::new("c", 4, 1.0, 1.0),
            Site::new("d", 4, 1.0, 1.0),
        ])
    }

    #[test]
    fn skewed_input_conserves_total_and_skews() {
        let mut rng = StdRng::seed_from_u64(1);
        let uniform = skewed_input(&cluster4(), 100.0, 0.0, &mut rng);
        assert!((uniform.total() - 100.0).abs() < 1e-9);
        assert!(uniform.skew_cv() < 1e-9);
        let skewed = skewed_input(&cluster4(), 100.0, 2.0, &mut rng);
        assert!((skewed.total() - 100.0).abs() < 1e-9);
        assert!(skewed.skew_cv() > 0.5);
    }

    #[test]
    fn key_skew_spans_severities() {
        let mut rng = StdRng::seed_from_u64(2);
        let flat = key_skew_weights(100, 0.0, &mut rng);
        assert!(flat.iter().all(|&w| w == 1.0));
        let skew = key_skew_weights(100, 1.5, &mut rng);
        let max = skew.iter().cloned().fold(0.0f64, f64::max);
        let min = skew.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0);
    }

    #[test]
    fn arrivals_are_increasing() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = poisson_arrivals(50, 10.0, 5.0, &mut rng);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a[0] > 5.0);
        let mean = (a[49] - 5.0) / 50.0;
        assert!(mean > 5.0 && mean < 20.0, "mean interarrival {mean}");
    }
}
