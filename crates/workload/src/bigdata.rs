//! Big-Data-Benchmark-like workload (§6.1 workload (b)).
//!
//! A mix of scan, join and aggregation queries with short DAGs of 2–5
//! stages, following the AMPLab benchmark's query classes over the Pavlo
//! et al. dataset.

use crate::{poisson_arrivals, skewed_input};
use rand::Rng;
use tetrium_cluster::Cluster;
use tetrium_jobs::{Job, JobId, Stage};

/// Generates `n_jobs` BigData-benchmark-like jobs over `cluster`.
pub fn bigdata_like_jobs(
    cluster: &Cluster,
    n_jobs: usize,
    mean_interarrival_secs: f64,
    scale_gb: f64,
    rng: &mut impl Rng,
) -> Vec<Job> {
    let arrivals = if mean_interarrival_secs > 0.0 {
        poisson_arrivals(n_jobs, mean_interarrival_secs, 0.0, rng)
    } else {
        vec![0.0; n_jobs]
    };
    (0..n_jobs)
        .map(|i| bigdata_like_job(cluster, JobId(i), arrivals[i], scale_gb, rng))
        .collect()
}

/// Generates one job of a random class (scan / aggregation / join).
pub fn bigdata_like_job(
    cluster: &Cluster,
    id: JobId,
    arrival: f64,
    scale_gb: f64,
    rng: &mut impl Rng,
) -> Job {
    let input_gb = scale_gb * rng.gen_range(0.5..2.0);
    let skew = rng.gen_range(0.3..2.0);
    let tasks_for = |gb: f64| ((gb * 10.0).round() as usize).clamp(2, 300);
    let class = rng.gen_range(0..3u8);
    let stages = match class {
        // Scan: map + small filter output (2 stages with a final gather).
        0 => vec![
            Stage::root_map(
                skewed_input(cluster, input_gb, skew, rng),
                tasks_for(input_gb),
                rng.gen_range(0.5..1.5),
                rng.gen_range(0.05..0.3),
            ),
            Stage::reduce(
                vec![0],
                tasks_for(input_gb * 0.2).max(2),
                rng.gen_range(0.3..1.0),
                0.05,
            ),
        ],
        // Aggregation: scan + group-by shuffle + final aggregate.
        1 => vec![
            Stage::root_map(
                skewed_input(cluster, input_gb, skew, rng),
                tasks_for(input_gb),
                rng.gen_range(0.8..2.0),
                rng.gen_range(0.3..0.8),
            ),
            Stage::reduce(
                vec![0],
                tasks_for(input_gb * 0.5).max(2),
                rng.gen_range(0.5..1.5),
                rng.gen_range(0.05..0.3),
            ),
            Stage::reduce(vec![1], tasks_for(input_gb * 0.1).max(2), 0.5, 0.05),
        ],
        // Join: two scans, a join shuffle, an aggregate, a final gather.
        _ => {
            let a_gb = input_gb * 0.6;
            let b_gb = input_gb * 0.4;
            vec![
                Stage::root_map(
                    skewed_input(cluster, a_gb, skew, rng),
                    tasks_for(a_gb),
                    rng.gen_range(0.8..2.0),
                    rng.gen_range(0.5..1.0),
                ),
                Stage::root_map(
                    skewed_input(cluster, b_gb, skew, rng),
                    tasks_for(b_gb),
                    rng.gen_range(0.8..2.0),
                    rng.gen_range(0.5..1.0),
                ),
                Stage::reduce(
                    vec![0, 1],
                    tasks_for(input_gb * 0.7).max(2),
                    rng.gen_range(1.0..2.5),
                    rng.gen_range(0.2..0.8),
                ),
                Stage::reduce(
                    vec![2],
                    tasks_for(input_gb * 0.3).max(2),
                    rng.gen_range(0.5..1.5),
                    rng.gen_range(0.05..0.2),
                ),
                Stage::reduce(vec![3], 2, 0.3, 0.05),
            ]
        }
    };
    let name = match class {
        0 => "bdb-scan",
        1 => "bdb-agg",
        _ => "bdb-join",
    };
    Job::new(id, format!("{name}-{}", id.index()), arrival, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tetrium_cluster::Site;

    fn cluster() -> Cluster {
        Cluster::new(vec![
            Site::new("a", 16, 0.125, 0.125),
            Site::new("b", 4, 0.0125, 0.025),
        ])
    }

    #[test]
    fn stage_counts_in_paper_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let jobs = bigdata_like_jobs(&cluster(), 60, 0.0, 2.0, &mut rng);
        for j in &jobs {
            assert!(
                (2..=5).contains(&j.num_stages()),
                "job has {} stages",
                j.num_stages()
            );
            assert!(j.matches_cluster(&cluster()));
        }
        // All three classes occur.
        assert!(jobs.iter().any(|j| j.name.starts_with("bdb-scan")));
        assert!(jobs.iter().any(|j| j.name.starts_with("bdb-agg")));
        assert!(jobs.iter().any(|j| j.name.starts_with("bdb-join")));
    }

    #[test]
    fn join_jobs_have_two_roots() {
        let mut rng = StdRng::seed_from_u64(2);
        let jobs = bigdata_like_jobs(&cluster(), 60, 0.0, 2.0, &mut rng);
        let join = jobs
            .iter()
            .find(|j| j.name.starts_with("bdb-join"))
            .expect("a join job");
        let roots = join.stages.iter().filter(|s| s.is_root()).count();
        assert_eq!(roots, 2);
    }
}
