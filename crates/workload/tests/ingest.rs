//! Integration tests for the trace-ingestion pipeline: committed fixture
//! files through the validation gate, per-constraint trigger fixtures,
//! scenario round-trip bit-identity, and a property test that generated
//! workloads always survive export → validate → import.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium_workload::ingest::{
    parse_trace_str, read_trace_file, scenario_from_trace, trace_from_jobs, validate, IngestError,
    RawTrace, TraceProfile, ValidationReport, ValidatorConfig, CONSTRAINTS,
};
use tetrium_workload::{trace_like_jobs, Scenario, TraceParams};

fn fixture(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn violations(trace: &RawTrace, cfg: &ValidatorConfig) -> ValidationReport {
    validate(trace, cfg).expect_err("trace should be rejected")
}

#[test]
fn mini_trace_fixture_is_accepted_and_becomes_a_scenario() {
    let trace = read_trace_file(&fixture("mini_trace.json")).unwrap();
    assert_eq!(trace.sites, 8);
    validate(&trace, &ValidatorConfig::default()).unwrap();
    let scenario = scenario_from_trace(
        &trace,
        tetrium_cluster::ec2_eight_regions(),
        &ValidatorConfig::default(),
    )
    .unwrap();
    assert_eq!(scenario.jobs.len(), 3);
    let stages: Vec<usize> = scenario.jobs.iter().map(|j| j.num_stages()).collect();
    assert_eq!(stages, vec![2, 3, 2]);
    let arrivals: Vec<f64> = scenario.jobs.iter().map(|j| j.arrival).collect();
    assert_eq!(arrivals, vec![0.0, 30.0, 55.0]);
    // Declared external input survives the conversion.
    assert!((scenario.jobs[0].input_gb() - 8.0).abs() < 1e-9);
}

#[test]
fn csv_and_json_fixture_renderings_parse_to_the_same_trace() {
    let json = read_trace_file(&fixture("mini_trace.json")).unwrap();
    let csv = read_trace_file(&fixture("mini_trace.csv")).unwrap();
    assert_eq!(json, csv);
    // The sniffing front door agrees with the per-format parsers.
    let body = std::fs::read_to_string(fixture("mini_trace.csv")).unwrap();
    assert_eq!(parse_trace_str(&body).unwrap(), json);
}

#[test]
fn malformed_fixture_is_rejected_with_row_addressed_violations() {
    let trace = read_trace_file(&fixture("malformed_trace.json")).unwrap();
    let report = violations(&trace, &ValidatorConfig::default());
    // The acceptance bar: at least three distinct constraints fire, each
    // violation addressed to a row (this fixture has no whole-trace
    // findings), and nothing panicked to get here.
    assert!(
        report.distinct_constraints() >= 3,
        "only {} constraints fired:\n{report}",
        report.distinct_constraints()
    );
    assert!(
        report.violations.iter().all(|v| v.row.is_some()),
        "{report}"
    );
    for row in [1, 2, 3] {
        assert!(
            report.violations.iter().any(|v| v.row == Some(row)),
            "no violation addressed row {row}:\n{report}"
        );
    }
    // The loader surfaces the same report instead of panicking.
    let err = scenario_from_trace(
        &trace,
        tetrium_cluster::ec2_eight_regions(),
        &ValidatorConfig::default(),
    )
    .unwrap_err();
    match err {
        IngestError::Rejected(r) => assert_eq!(r, report),
        other => panic!("expected Rejected, got {other}"),
    }
}

/// One minimal trigger fixture per constraint; each must fire its target
/// constraint (others may fire too — constraints are independent scans).
#[test]
fn every_constraint_has_a_trigger_fixture() {
    fn t(rows: &str) -> RawTrace {
        parse_trace_str(&format!(
            r#"{{"format": "tetrium-trace/v1", "sites": 2, "rows": [{rows}]}}"#
        ))
        .unwrap()
    }
    const ROOT: &str = r#"{"job": "a", "submit_s": 1.0, "stage": 0, "deps": [], "kind": "map",
        "tasks": 4, "task_s": 1.0, "input_gb_by_site": [1.0, 1.0], "output_gb": 1.0}"#;
    let second = |name: &str, submit: f64| {
        ROOT.replace("\"job\": \"a\"", &format!("\"job\": \"{name}\""))
            .replace("\"submit_s\": 1.0", &format!("\"submit_s\": {submit:?}"))
    };
    let cases: Vec<(&str, RawTrace, ValidatorConfig)> = vec![
        (
            "schema",
            t(&ROOT.replace("\"tasks\": 4", "\"tasks\": \"four\"")),
            ValidatorConfig::default(),
        ),
        (
            "required",
            t(&ROOT.replace("\"task_s\": 1.0, ", "")),
            ValidatorConfig::default(),
        ),
        (
            "non-negative",
            t(&ROOT.replace("\"output_gb\": 1.0", "\"output_gb\": -1.0")),
            ValidatorConfig::default(),
        ),
        (
            "monotone-timestamps",
            t(&format!("{ROOT},{}", second("b", 0.5))),
            ValidatorConfig::default(),
        ),
        (
            "topology",
            t(&ROOT
                .replace("\"deps\": []", "\"deps\": [3]")
                .replace("\"input_gb_by_site\": [1.0, 1.0]", "\"input_gb\": 1.0")),
            ValidatorConfig::default(),
        ),
        (
            "site-arity",
            t(&ROOT.replace("[1.0, 1.0]", "[1.0, 1.0, 1.0]")),
            ValidatorConfig::default(),
        ),
        (
            "byte-conservation",
            t(&format!(
                r#"{ROOT},{{"job": "a", "submit_s": 1.0, "stage": 1, "deps": [0],
                    "kind": "reduce", "tasks": 2, "task_s": 1.0, "input_gb": 7.0,
                    "output_gb": 0.1}}"#
            )),
            ValidatorConfig::default(),
        ),
        (
            "drift",
            t(&format!("{ROOT},{}", second("b", 2.0))),
            ValidatorConfig {
                profile: Some(TraceProfile {
                    median_input_gb: 5000.0,
                    p90_input_gb: 9000.0,
                    mean_interarrival_s: 1.0,
                    mean_stages: 1.0,
                }),
                ..ValidatorConfig::default()
            },
        ),
    ];
    assert_eq!(
        cases.len(),
        CONSTRAINTS.len(),
        "add a trigger fixture for every constraint in the pipeline"
    );
    for (name, trace, cfg) in &cases {
        assert!(
            CONSTRAINTS.iter().any(|(n, _)| n == name),
            "'{name}' is not a pipeline constraint"
        );
        let report = violations(trace, cfg);
        assert!(
            report.violations.iter().any(|v| v.constraint == *name),
            "fixture for '{name}' did not trigger it:\n{report}"
        );
    }
}

#[test]
fn fixture_scenario_round_trip_is_bit_identical() {
    let trace = read_trace_file(&fixture("mini_trace.json")).unwrap();
    let scenario = scenario_from_trace(
        &trace,
        tetrium_cluster::ec2_eight_regions(),
        &ValidatorConfig::default(),
    )
    .unwrap();
    let json = scenario.to_json().unwrap();
    let back = Scenario::from_json(&json).unwrap();
    assert_eq!(
        back.to_json().unwrap(),
        json,
        "scenario JSON must round-trip byte-identically"
    );
    // And the raw trace itself round-trips through both renderings.
    assert_eq!(RawTrace::from_json(&trace.to_json()).unwrap(), trace);
    assert_eq!(RawTrace::from_csv(&trace.to_csv()).unwrap(), trace);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated trace-like workload exports to a trace that passes
    /// the full validation gate — including drift against its own profile
    /// — and imports back to the same number of jobs and stages.
    #[test]
    fn generated_workloads_always_pass_validation(seed in 0u64..1000, n_jobs in 2usize..12) {
        let cluster = tetrium_cluster::ec2_eight_regions();
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = trace_like_jobs(&cluster, n_jobs, &TraceParams::default(), &mut rng);
        let trace = trace_from_jobs(&jobs, cluster.len(), "proptest");
        let mut cfg = ValidatorConfig::default();
        cfg.profile = TraceProfile::from_trace(&trace);
        prop_assert!(cfg.profile.is_some());
        if let Err(report) = validate(&trace, &cfg) {
            prop_assert!(false, "generated trace rejected:\n{}", report);
        }
        let scenario = scenario_from_trace(&trace, cluster, &cfg).unwrap();
        prop_assert_eq!(scenario.jobs.len(), jobs.len());
        for (a, b) in scenario.jobs.iter().zip(&jobs) {
            prop_assert_eq!(a.num_stages(), b.num_stages());
            prop_assert!((a.arrival - b.arrival).abs() < 1e-12);
        }
    }
}
