//! End-to-end service tests: submission-order determinism under one epoch
//! partition, merged multi-shard reports, and graceful shutdown.

use tetrium_serve::{
    shard_of, Job, JobEvent, JobId, ServeConfig, SpanTap, SubmitError, TetriumService,
};

use tetrium::cluster::{Cluster, DataDistribution, Site};
use tetrium::jobs::Stage;

fn two_sites() -> Cluster {
    Cluster::new(vec![
        Site::new("a", 2, 1.0, 1.0),
        Site::new("b", 2, 1.0, 1.0),
    ])
}

fn job(id: usize) -> Job {
    Job::new(
        JobId(id),
        format!("serve-{id}"),
        0.0,
        vec![Stage::root_map(
            DataDistribution::new(vec![1.0 + 0.1 * id as f64, 1.2]),
            4,
            1.0,
            0.2,
        )],
    )
}

fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("build runtime")
}

/// Submits `ids` (in the given order) to a held service, opens it and
/// joins, returning the canonical JSON string of the merged report.
fn run_held(shards: usize, ids: &[usize]) -> String {
    let rt = runtime();
    rt.block_on(async {
        let cfg = ServeConfig {
            shards,
            ..ServeConfig::default()
        };
        let svc = TetriumService::start_held(&two_sites(), &cfg);
        for &id in ids {
            let receipt = svc.submit(job(id)).await.expect("submit accepted");
            assert_eq!(receipt.shard, shard_of(JobId(id), shards));
        }
        svc.open();
        let report = svc.join().await.expect("service run succeeds");
        serde_json::to_string(&report.to_json()).expect("serialize report")
    })
}

#[test]
fn submission_order_determinism() {
    // Same job set, three different submission interleavings, all queued
    // before the workers admit anything → one epoch per shard → the
    // canonical reports must be byte-identical.
    let forward: Vec<usize> = (0..8).collect();
    let reverse: Vec<usize> = (0..8).rev().collect();
    let shuffled = vec![3, 7, 0, 5, 1, 6, 2, 4];
    for shards in [1, 3] {
        let a = run_held(shards, &forward);
        let b = run_held(shards, &reverse);
        let c = run_held(shards, &shuffled);
        assert_eq!(a, b, "reverse submission changed the {shards}-shard report");
        assert_eq!(
            a, c,
            "shuffled submission changed the {shards}-shard report"
        );
    }
}

#[test]
fn concurrent_submitters_are_deterministic() {
    // Two tasks race to submit disjoint halves of the set; the epoch
    // partition is still "everything" because the service is held.
    let serial = run_held(2, &(0..8).collect::<Vec<_>>());
    let rt = runtime();
    let racy = rt.block_on(async {
        let cfg = ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        };
        let svc = std::sync::Arc::new(TetriumService::start_held(&two_sites(), &cfg));
        let mut submitters = Vec::new();
        for half in 0..2usize {
            let svc = std::sync::Arc::clone(&svc);
            submitters.push(tokio::spawn(async move {
                for id in (half * 4)..(half * 4 + 4) {
                    svc.submit(job(id)).await.expect("submit accepted");
                }
            }));
        }
        for s in submitters {
            s.await.expect("submitter ran");
        }
        svc.open();
        let svc = std::sync::Arc::into_inner(svc).expect("sole owner after submitters");
        let report = svc.join().await.expect("service run succeeds");
        serde_json::to_string(&report.to_json()).expect("serialize report")
    });
    assert_eq!(serial, racy, "concurrent submission changed the report");
}

#[test]
fn multi_shard_report_routes_every_job() {
    let rt = runtime();
    rt.block_on(async {
        let shards = 3;
        let cfg = ServeConfig {
            shards,
            ..ServeConfig::default()
        };
        let svc = TetriumService::start_held(&two_sites(), &cfg);
        for id in 0..12 {
            svc.submit(job(id)).await.expect("submit accepted");
        }
        svc.open();
        let report = svc.join().await.expect("service run succeeds");
        assert_eq!(report.total_jobs(), 12);
        assert_eq!(report.shards.len(), shards);
        for s in &report.shards {
            for j in &s.report.jobs {
                assert_eq!(
                    s.shard,
                    shard_of(j.id, shards),
                    "job {:?} landed on the wrong shard",
                    j.id
                );
            }
        }
        assert!(report.makespan() > 0.0);
        assert!(report.avg_response() > 0.0);
    });
}

#[test]
fn graceful_shutdown_completes_accepted_jobs_and_flushes_events() {
    let rt = runtime();
    rt.block_on(async {
        let cfg = ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        };
        let svc = TetriumService::start(&two_sites(), &cfg);
        let mut events = svc.subscribe();
        for id in 0..3 {
            svc.submit(job(id)).await.expect("submit accepted");
        }
        // Cancel mid-run: whatever was accepted must still complete.
        svc.shutdown();
        let late = svc.submit(job(99)).await;
        match late {
            Err(SubmitError::ShuttingDown(j)) => assert_eq!(j.id, JobId(99)),
            other => panic!("post-shutdown submit must be rejected, got {other:?}"),
        }
        let report = svc.join().await.expect("service run succeeds");
        assert_eq!(report.total_jobs(), 3, "accepted jobs leaked on shutdown");

        // The event stream is closed after join; drain it fully.
        let mut log = Vec::new();
        loop {
            match events.recv().await {
                Ok(ev) => log.push(ev),
                Err(tokio::sync::broadcast::error::RecvError::Lagged(_)) => continue,
                Err(tokio::sync::broadcast::error::RecvError::Closed) => break,
            }
        }
        let admitted = log
            .iter()
            .filter(|e| matches!(e, JobEvent::Admitted { .. }))
            .count();
        let finished = log
            .iter()
            .filter(|e| matches!(e, JobEvent::Finished { .. }))
            .count();
        assert_eq!(admitted, 3, "events: {log:?}");
        assert_eq!(finished, 3, "events: {log:?}");
        match log.last() {
            Some(JobEvent::ShardDone { shard: 0, jobs: 3 }) => {}
            other => panic!("final event must be ShardDone for 3 jobs, got {other:?}"),
        }
    });
}

#[test]
fn span_tap_exports_deterministic_otel_spans() {
    fn run_once() -> String {
        let rt = runtime();
        rt.block_on(async {
            let shards = 2;
            let mut engine = tetrium::sim::EngineConfig::trace_like(0);
            // Task events only reach subscribers when the shard engines
            // record obs.
            engine.record_obs = true;
            let cfg = ServeConfig {
                shards,
                engine,
                ..ServeConfig::default()
            };
            let svc = TetriumService::start_held(&two_sites(), &cfg);
            let mut rx = svc.subscribe();
            let collector = tokio::spawn(async move {
                let mut tap = SpanTap::new();
                tap.collect(&mut rx, shards).await;
                tap
            });
            for id in 0..6 {
                svc.submit(job(id)).await.expect("submit accepted");
            }
            svc.open();
            let report = svc.join().await.expect("service run succeeds");
            assert_eq!(report.total_jobs(), 6);
            let tap = collector.await.expect("collector ran");
            assert_eq!(tap.shards_done(), shards);
            tap.to_otel_string("serve-test")
        })
    }
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "span export must not depend on event timing");
    let v: serde_json::Value = serde_json::from_str(&a).expect("export parses");
    let resources = v["resourceSpans"].as_array().expect("resourceSpans array");
    assert!(!resources.is_empty());
    for r in resources {
        let spans = r["scopeSpans"][0]["spans"].as_array().expect("spans array");
        assert!(!spans.is_empty());
        for s in spans {
            assert_eq!(s["traceId"].as_str().map(str::len), Some(32));
            assert_eq!(s["spanId"].as_str().map(str::len), Some(16));
        }
    }
}

#[test]
fn join_without_shutdown_drains_backlog() {
    let rt = runtime();
    rt.block_on(async {
        let svc = TetriumService::start(&two_sites(), &ServeConfig::default());
        for id in 0..4 {
            svc.submit(job(id)).await.expect("submit accepted");
        }
        // No explicit shutdown: join drops the submission handles, the
        // worker drains the backlog and exits on the closed queue.
        let report = svc.join().await.expect("service run succeeds");
        assert_eq!(report.total_jobs(), 4);
    });
}
