//! Service configuration and the deterministic shard map.

use tetrium::jobs::JobId;
use tetrium::sim::EngineConfig;
use tetrium::SchedulerKind;

/// Configuration of a [`crate::TetriumService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of independent engine shards (≥ 1).
    pub shards: usize,
    /// Scheduler every shard runs.
    pub scheduler: SchedulerKind,
    /// Engine configuration shared by every shard (seed, noise, obs).
    pub engine: EngineConfig,
    /// Bound of each shard's submission queue; submissions beyond it
    /// apply backpressure to `submit`.
    pub queue_depth: usize,
    /// Ring capacity of the lifecycle-event broadcast channel; slow
    /// subscribers past it observe a `Lagged` gap, they never block the
    /// service.
    pub event_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            scheduler: SchedulerKind::Tetrium,
            engine: EngineConfig::default(),
            queue_depth: 64,
            event_capacity: 1024,
        }
    }
}

/// Routes a job id to a shard with a fixed avalanche hash (splitmix64).
/// Deliberately not `RandomState`: the shard map must be identical across
/// processes and runs for the determinism contract to hold.
pub fn shard_of(id: JobId, shards: usize) -> usize {
    assert!(shards > 0, "service needs at least one shard");
    let mut z = (id.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // `z % shards < shards <= usize::MAX`, so the narrowing cast is exact.
    (z % (shards as u64)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_is_stable_and_in_range() {
        for shards in [1, 2, 3, 8] {
            for i in 0..100 {
                let s = shard_of(JobId(i), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(JobId(i), shards), "same id, same shard");
            }
        }
    }

    #[test]
    fn shard_map_spreads_consecutive_ids() {
        let shards = 4;
        let mut hit = vec![0usize; shards];
        for i in 0..64 {
            hit[shard_of(JobId(i), shards)] += 1;
        }
        assert!(
            hit.iter().all(|&h| h > 0),
            "64 consecutive ids must touch every one of 4 shards: {hit:?}"
        );
    }
}
