//! Final service reports and their canonical JSON form.

use serde_json::json;
use tetrium::sim::RunReport;

/// Final report of one shard: its engine's complete [`RunReport`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// The shard engine's report (jobs in admission order).
    pub report: RunReport,
}

/// Merged report of a whole service run, shards in index order.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-shard reports, sorted by shard index.
    pub shards: Vec<ShardReport>,
}

impl ServeReport {
    /// Total jobs completed across shards.
    pub fn total_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.report.jobs.len()).sum()
    }

    /// Total WAN gigabytes across shards.
    pub fn total_wan_gb(&self) -> f64 {
        self.shards.iter().map(|s| s.report.total_wan_gb).sum()
    }

    /// Largest per-shard makespan (shards run independent virtual clocks,
    /// so the service-level makespan is their maximum).
    pub fn makespan(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.report.makespan)
            .fold(0.0f64, f64::max)
    }

    /// Job-weighted mean response time across shards.
    pub fn avg_response(&self) -> f64 {
        let n = self.total_jobs();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .shards
            .iter()
            .flat_map(|s| s.report.jobs.iter())
            .map(|j| j.response)
            .sum();
        sum / n as f64
    }

    /// Canonical JSON: shards in index order, jobs in admission order,
    /// virtual-time quantities only. Wall-clock measurements
    /// (`sched_wall_secs`) are deliberately excluded so the serialization
    /// is byte-identical for identical epoch partitions (DESIGN.md §7).
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "shards": self.shards.iter().map(|s| json!({
                "shard": s.shard,
                "scheduler": s.report.scheduler,
                "makespan": s.report.makespan,
                "total_wan_gb": s.report.total_wan_gb,
                "sched_invocations": s.report.sched_invocations,
                "jobs": s.report.jobs.iter().map(|j| json!({
                    "id": j.id.0,
                    "name": j.name,
                    "arrival": j.arrival,
                    "finished": j.finished,
                    "response": j.response,
                    "wan_gb": j.wan_gb,
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
            "total_jobs": self.total_jobs(),
            "makespan": self.makespan(),
            "total_wan_gb": self.total_wan_gb(),
            "avg_response": self.avg_response(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium::jobs::JobId;
    use tetrium::sim::JobOutcome;

    fn shard(i: usize, responses: &[f64]) -> ShardReport {
        ShardReport {
            shard: i,
            report: RunReport {
                scheduler: "test".into(),
                jobs: responses
                    .iter()
                    .enumerate()
                    .map(|(k, &r)| JobOutcome {
                        id: JobId(10 * i + k),
                        name: format!("j{k}"),
                        arrival: 0.0,
                        finished: r,
                        response: r,
                        wan_gb: 1.0,
                        num_stages: 1,
                        total_tasks: 1,
                        input_gb: 1.0,
                        intermediate_gb: 0.0,
                        input_skew_cv: 0.0,
                        est_error: 0.0,
                        stage_spans: Vec::new(),
                    })
                    .collect(),
                makespan: responses.iter().copied().fold(0.0, f64::max),
                total_wan_gb: responses.len() as f64,
                sched_invocations: responses.len(),
                sched_wall_secs: 123.456, // wall-clock: must not leak into JSON
                copies_launched: 0,
                copies_won: 0,
                task_failures: 0,
                dynamics_events: 0,
                trace: Vec::new(),
                obs: None,
            },
        }
    }

    #[test]
    fn aggregates_across_shards() {
        let r = ServeReport {
            shards: vec![shard(0, &[1.0, 3.0]), shard(1, &[5.0])],
        };
        assert_eq!(r.total_jobs(), 3);
        assert!((r.makespan() - 5.0).abs() < 1e-12);
        assert!((r.total_wan_gb() - 3.0).abs() < 1e-12);
        assert!((r.avg_response() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_canonical_and_wall_free() {
        let r = ServeReport {
            shards: vec![shard(0, &[1.0]), shard(1, &[2.0])],
        };
        let s = serde_json::to_string(&r.to_json()).unwrap();
        assert!(!s.contains("wall"), "wall-clock leaked into canonical JSON");
        // Serializing twice is byte-identical.
        assert_eq!(s, serde_json::to_string(&r.to_json()).unwrap());
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = ServeReport { shards: Vec::new() };
        assert_eq!(r.total_jobs(), 0);
        assert_eq!(r.avg_response(), 0.0);
        assert_eq!(r.makespan(), 0.0);
    }
}
