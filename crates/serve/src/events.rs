//! Lifecycle events fanned out to service subscribers.

use tetrium::jobs::JobId;
use tetrium::obs::TaskPhaseEvent;

/// One service lifecycle event. Times are virtual (engine) seconds of the
/// owning shard — shards advance independently, so times are comparable
/// only within a shard.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// A job was admitted into a shard's engine.
    Admitted {
        /// Owning shard.
        shard: usize,
        /// The job.
        job: JobId,
        /// Arrival time after clamping to the shard's virtual clock.
        arrival: f64,
    },
    /// A job ran to completion.
    Finished {
        /// Owning shard.
        shard: usize,
        /// The job.
        job: JobId,
        /// Virtual completion time.
        finished: f64,
        /// `finished - arrival`.
        response: f64,
        /// WAN gigabytes the job moved.
        wan_gb: f64,
    },
    /// A task lifecycle transition (only when the engine records obs).
    Task {
        /// Owning shard.
        shard: usize,
        /// Job the task belongs to (dense engine index, not [`JobId`]).
        job_index: usize,
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// Whether the attempt is a speculative copy.
        copy: bool,
        /// Transition kind.
        phase: TaskPhaseEvent,
        /// Site of the attempt (dense site index).
        site: usize,
        /// Virtual time of the transition.
        at: f64,
    },
    /// A shard drained its queue and its engine went idle.
    Idle {
        /// The shard.
        shard: usize,
        /// Virtual time at idle.
        now: f64,
    },
    /// A shard worker exited (graceful shutdown or queue closed); its
    /// report is final. Always the shard's last event.
    ShardDone {
        /// The shard.
        shard: usize,
        /// Jobs the shard completed over its lifetime.
        jobs: usize,
    },
}

impl JobEvent {
    /// The shard that emitted the event.
    pub fn shard(&self) -> usize {
        match *self {
            JobEvent::Admitted { shard, .. }
            | JobEvent::Finished { shard, .. }
            | JobEvent::Task { shard, .. }
            | JobEvent::Idle { shard, .. }
            | JobEvent::ShardDone { shard, .. } => shard,
        }
    }
}
