//! OTel span export for the serve front end.
//!
//! The engine's final shard reports cannot carry task timelines — the
//! workers drain task events mid-run to fan them out as [`JobEvent::Task`]
//! — so the span exporter lives on the *subscriber* side: a [`SpanTap`]
//! consumes the event stream, reassembles per-shard task timelines, and
//! serializes them with the same OTLP/JSON serializer the CLI uses
//! (`tetrium::obs::otel`).
//!
//! Shard virtual clocks are independent, so each shard exports as its own
//! resource (`{run}/shard-{i}` is its id namespace): traces from different
//! shards never share ids, and one shard's export is byte-identical to
//! what a single-process run of that shard would produce.

use crate::events::JobEvent;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use tetrium::cluster::SiteId;
use tetrium::obs::{otel, ObsReport, TaskEvent};
use tokio::sync::broadcast;

/// Subscriber-side span collector. Feed it every event from a
/// subscription (or let [`SpanTap::collect`] drive a receiver) and ask
/// for the OTLP/JSON document when the run ends.
#[derive(Debug, Default)]
pub struct SpanTap {
    shards: BTreeMap<usize, Vec<TaskEvent>>,
    done: usize,
}

impl SpanTap {
    /// An empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one event; only [`JobEvent::Task`] contributes spans.
    pub fn observe(&mut self, event: &JobEvent) {
        match *event {
            JobEvent::Task {
                shard,
                job_index,
                stage,
                task,
                copy,
                phase,
                site,
                at,
            } => {
                self.shards.entry(shard).or_default().push(TaskEvent {
                    t: at,
                    job: job_index,
                    stage,
                    task,
                    copy,
                    phase,
                    site: SiteId(site),
                });
            }
            JobEvent::ShardDone { .. } => self.done += 1,
            _ => {}
        }
    }

    /// Number of `ShardDone` events seen so far.
    pub fn shards_done(&self) -> usize {
        self.done
    }

    /// Drives a subscription until `shards` workers have reported
    /// `ShardDone` or the channel closes. `Lagged` gaps are skipped (the
    /// export then covers the events that were observed).
    pub async fn collect(&mut self, rx: &mut broadcast::Receiver<JobEvent>, shards: usize) {
        while self.done < shards {
            match rx.recv().await {
                Ok(event) => self.observe(&event),
                Err(broadcast::error::RecvError::Lagged(_)) => {}
                Err(broadcast::error::RecvError::Closed) => break,
            }
        }
    }

    /// The OTLP/JSON document: one resource per shard, each exported under
    /// the `{run_name}/shard-{i}` id namespace.
    pub fn to_otel_json(&self, run_name: &str) -> Value {
        let mut resources = Vec::with_capacity(self.shards.len());
        for (shard, events) in &self.shards {
            let report = ObsReport {
                task_events: events.clone(),
                ..ObsReport::default()
            };
            let doc = otel::to_otel_json(&report, &format!("{run_name}/shard-{shard}"));
            if let Some(rs) = doc.get("resourceSpans").and_then(Value::as_array) {
                resources.extend(rs.iter().cloned());
            }
        }
        json!({"resourceSpans": resources})
    }

    /// Pretty-printed form of [`SpanTap::to_otel_json`].
    pub fn to_otel_string(&self, run_name: &str) -> String {
        // lint:allow(L6, "serializing a serde_json::Value cannot fail")
        serde_json::to_string_pretty(&self.to_otel_json(run_name)).expect("otel export serializes")
    }
}
