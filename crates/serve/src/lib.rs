//! Scheduler-as-a-service front end over the deterministic Tetrium core
//! (DESIGN.md §12).
//!
//! The simulation engine is a deterministic, synchronous, virtual-time
//! machine; this crate wraps N independent engine instances ("shards")
//! behind one asynchronous submission front end:
//!
//! - jobs arrive continuously through [`TetriumService::submit`] and are
//!   routed to a shard by a deterministic hash of their [`JobId`]
//!   ([`shard_of`] — never `RandomState`);
//! - each shard worker drains its queue in *epochs*: everything queued when
//!   the worker looks is admitted as one batch, canonically sorted by job
//!   id, then the engine steps to idle in virtual time;
//! - lifecycle events ([`JobEvent`]) fan out to any number of subscribers
//!   over a broadcast channel;
//! - shutdown is cooperative via a `CancellationToken`: cancelled workers
//!   stop accepting work, finish every admitted job, flush final events
//!   and return their reports.
//!
//! # Determinism contract
//!
//! The async layer introduces real concurrency, so the *grouping* of
//! submissions into epochs depends on timing. Determinism is preserved
//! one level down: a shard's report is a pure function of its epoch
//! partition — for the same sequence of epoch batches (sets of jobs), the
//! per-shard reports are byte-identical, because within an epoch jobs are
//! canonically ordered before admission and the engine itself is
//! deterministic. In particular, submitting a whole job set before the
//! workers run yields one epoch per shard and therefore byte-identical
//! reports regardless of submission interleaving — the property
//! `submission_order_determinism` tests pin down.
//!
//! The core crates stay tokio-free; this crate (and the vendored tokio
//! stand-in it runs on) contains no wall-clock or entropy source — time
//! below the front end is exclusively virtual (lint rule L3).

mod config;
mod events;
mod report;
mod service;
mod spans;

pub use config::{shard_of, ServeConfig};
pub use events::JobEvent;
pub use report::{ServeReport, ShardReport};
pub use service::{ServeError, SubmitError, SubmitReceipt, TetriumService};
pub use spans::SpanTap;

pub use tetrium::jobs::{Job, JobId};
pub use tetrium::SchedulerKind;
