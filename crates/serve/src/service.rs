//! The service: shard workers around deterministic engines, an async
//! submission front end, broadcast fan-out and cooperative shutdown.

use tokio::sync::{broadcast, mpsc};
use tokio::task::JoinHandle;
use tokio_util::sync::CancellationToken;

use tetrium::cluster::Cluster;
use tetrium::jobs::{Job, JobId};
use tetrium::sim::{Engine, SimError};

use crate::config::{shard_of, ServeConfig};
use crate::events::JobEvent;
use crate::report::{ServeReport, ShardReport};

/// Acknowledgement of an accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The submitted job's id.
    pub job: JobId,
    /// Shard the job was routed to.
    pub shard: usize,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The service is shutting down (or already shut down); the job is
    /// returned to the caller.
    ShuttingDown(Box<Job>),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown(job) => {
                write!(f, "service is shutting down; job {} rejected", job.id)
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a service run failed.
#[derive(Debug)]
pub enum ServeError {
    /// A shard's engine failed (stall or exhausted retries).
    Shard {
        /// The failing shard.
        shard: usize,
        /// The engine error.
        error: SimError,
    },
    /// A shard worker was cancelled before returning its report (only
    /// possible if the runtime is torn down around the service).
    WorkerLost {
        /// The lost shard.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shard { shard, error } => write!(f, "shard {shard} failed: {error}"),
            ServeError::WorkerLost { shard } => write!(f, "shard {shard} worker lost"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A running scheduler service: N engine shards behind one submission
/// front end. See the crate docs for the architecture and determinism
/// contract.
pub struct TetriumService {
    submit_txs: Vec<mpsc::Sender<Job>>,
    events_tx: broadcast::Sender<JobEvent>,
    token: CancellationToken,
    gate: CancellationToken,
    workers: Vec<JoinHandle<Result<ShardReport, SimError>>>,
    shards: usize,
}

impl TetriumService {
    /// Starts the service: builds one engine per shard over clones of
    /// `cluster` and spawns the shard workers onto the current runtime.
    ///
    /// # Panics
    ///
    /// Panics when called outside a tokio runtime context, or when
    /// `cfg.shards` is zero.
    pub fn start(cluster: &Cluster, cfg: &ServeConfig) -> Self {
        Self::start_inner(cluster, cfg, false)
    }

    /// Like [`TetriumService::start`], but workers admit nothing until
    /// [`TetriumService::open`] is called. Submissions made while held sit
    /// in the shard queues and form each shard's first epoch — this is how
    /// callers (and the determinism tests) pin the epoch partition exactly.
    ///
    /// # Panics
    ///
    /// See [`TetriumService::start`].
    pub fn start_held(cluster: &Cluster, cfg: &ServeConfig) -> Self {
        Self::start_inner(cluster, cfg, true)
    }

    fn start_inner(cluster: &Cluster, cfg: &ServeConfig, held: bool) -> Self {
        assert!(cfg.shards > 0, "service needs at least one shard");
        let (events_tx, _keepalive) = broadcast::channel(cfg.event_capacity.max(1));
        // The subscriber created at channel construction is dropped here:
        // fan-out is best-effort and must not block or fail the service
        // when nobody listens.
        drop(_keepalive);
        let token = CancellationToken::new();
        let gate = CancellationToken::new();
        if !held {
            gate.cancel(); // Open from the start.
        }
        let mut submit_txs = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = mpsc::channel(cfg.queue_depth.max(1));
            submit_txs.push(tx);
            let engine = Engine::new(
                cluster.clone(),
                Vec::new(),
                cfg.scheduler.build(),
                cfg.engine.clone(),
            );
            workers.push(tokio::spawn(shard_worker(
                shard,
                engine,
                rx,
                events_tx.clone(),
                token.child_token(),
                gate.clone(),
            )));
        }
        Self {
            submit_txs,
            events_tx,
            token,
            gate,
            workers,
            shards: cfg.shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Opens a service started with [`TetriumService::start_held`]; no-op
    /// otherwise.
    pub fn open(&self) {
        self.gate.cancel();
    }

    /// Submits a job: routes it to its shard by [`shard_of`] and enqueues
    /// it, waiting when the shard's queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] (returning the job) once
    /// [`TetriumService::shutdown`] has been called.
    pub async fn submit(&self, job: Job) -> Result<SubmitReceipt, SubmitError> {
        if self.token.is_cancelled() {
            return Err(SubmitError::ShuttingDown(Box::new(job)));
        }
        let id = job.id;
        let shard = shard_of(id, self.shards);
        // `shard_of` returns `< self.shards == submit_txs.len()`; treat a
        // mismatch like shutdown rather than panicking a serving task.
        let Some(tx) = self.submit_txs.get(shard) else {
            return Err(SubmitError::ShuttingDown(Box::new(job)));
        };
        match tx.send(job).await {
            Ok(()) => Ok(SubmitReceipt { job: id, shard }),
            Err(mpsc::SendError(job)) => Err(SubmitError::ShuttingDown(Box::new(job))),
        }
    }

    /// A new lifecycle-event subscription. Events sent before the call are
    /// not replayed; slow subscribers observe `Lagged` gaps rather than
    /// blocking the service.
    pub fn subscribe(&self) -> broadcast::Receiver<JobEvent> {
        self.events_tx.subscribe()
    }

    /// Begins graceful shutdown: new submissions are rejected, every
    /// already accepted job still runs to completion, final events are
    /// flushed. Await [`TetriumService::join`] for the reports.
    pub fn shutdown(&self) {
        self.token.cancel();
    }

    /// Waits for every shard worker to finish and merges their reports
    /// (shards in index order). Without a prior
    /// [`TetriumService::shutdown`], workers exit once every submission
    /// handle is dropped — `join` drops the service's own handles, so
    /// calling it ends the run after the backlog drains.
    ///
    /// # Errors
    ///
    /// The first shard failure in shard order, if any.
    pub async fn join(mut self) -> Result<ServeReport, ServeError> {
        // Open the gate (a held service must not deadlock join) and drop
        // the submission handles so workers see their queues close.
        self.gate.cancel();
        self.submit_txs.clear();
        let mut shards = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.drain(..).enumerate() {
            match worker.await {
                Ok(Ok(report)) => shards.push(report),
                Ok(Err(error)) => return Err(ServeError::Shard { shard, error }),
                Err(_) => return Err(ServeError::WorkerLost { shard }),
            }
        }
        shards.sort_by_key(|s| s.shard);
        Ok(ServeReport { shards })
    }
}

/// Admits one epoch batch into the engine, steps to idle, and fans out the
/// resulting events. Returns how many jobs finished.
fn process_epoch(
    shard: usize,
    engine: &mut Engine,
    mut epoch: Vec<Job>,
    events: &broadcast::Sender<JobEvent>,
) -> Result<usize, SimError> {
    // Canonical admission order within an epoch: job id. This (plus the
    // deterministic engine) makes the shard report a pure function of the
    // epoch partition, independent of submission interleaving.
    epoch.sort_by_key(|j| j.id);
    for job in epoch {
        let arrival = job.arrival.max(engine.now());
        let id = engine.submit_job(job);
        let _ = events.send(JobEvent::Admitted {
            shard,
            job: id,
            arrival,
        });
    }
    engine.step_until_idle()?;
    for e in engine.obs_handle().drain_task_events() {
        let _ = events.send(JobEvent::Task {
            shard,
            job_index: e.job,
            stage: e.stage,
            task: e.task,
            copy: e.copy,
            phase: e.phase,
            site: e.site.index(),
            at: e.t,
        });
    }
    let finished = engine.drain_finished();
    let n = finished.len();
    for out in finished {
        let _ = events.send(JobEvent::Finished {
            shard,
            job: out.id,
            finished: out.finished,
            response: out.response,
            wan_gb: out.wan_gb,
        });
    }
    let _ = events.send(JobEvent::Idle {
        shard,
        now: engine.now(),
    });
    Ok(n)
}

/// One shard's worker: drain the queue in epochs until the queue closes or
/// shutdown is requested, then flush and return the engine's report.
async fn shard_worker(
    shard: usize,
    mut engine: Engine,
    mut rx: mpsc::Receiver<Job>,
    events: broadcast::Sender<JobEvent>,
    token: CancellationToken,
    gate: CancellationToken,
) -> Result<ShardReport, SimError> {
    gate.cancelled().await;
    engine.seed_initial_events();
    let mut completed = 0usize;
    loop {
        // Park until the next job, the queue closing, or shutdown.
        let (first, closing) = match token.run_until_cancelled(rx.recv()).await {
            Some(Some(job)) => (Some(job), false),
            // Every submission handle dropped and the backlog drained.
            Some(None) => (None, true),
            // Graceful shutdown: close the queue so concurrent submits
            // fail fast, then drain whatever was already accepted.
            None => {
                rx.close();
                (None, true)
            }
        };
        // Everything queued right now joins this epoch.
        let mut epoch: Vec<Job> = Vec::new();
        epoch.extend(first);
        while let Ok(job) = rx.try_recv() {
            epoch.push(job);
        }
        if !epoch.is_empty() {
            completed += process_epoch(shard, &mut engine, epoch, &events)?;
        }
        if closing {
            break;
        }
    }
    let _ = events.send(JobEvent::ShardDone {
        shard,
        jobs: completed,
    });
    Ok(ShardReport {
        shard,
        report: engine.into_report(),
    })
}
