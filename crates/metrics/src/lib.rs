//! Evaluation metrics for scheduler comparisons (§6).
//!
//! The paper reports results as *reductions* relative to a baseline
//! (response time, slowdown, WAN usage), per-job reduction CDFs (Fig 8b),
//! and gain distributions bucketed by workload characteristics (Fig 12).
//! This crate holds the pure-math side of that reporting; runs come from
//! [`tetrium_sim::RunReport`].

mod buckets;
mod cdf;
mod export;
mod gains;
mod timeline;

pub use buckets::{bucket_by, Bucket};
pub use cdf::Cdf;
pub use export::chrome_trace;
pub use gains::{jain_index, per_job_reduction, reduction_pct, slowdowns, wan_reduction_pct};
pub use timeline::{copy_win_fraction, fetch_compute_split, site_busy_secs, site_utilization};
