//! Reductions, slowdowns and fairness indices.

use tetrium_jobs::JobId;
use tetrium_sim::RunReport;

/// Percentage reduction of `value` relative to `baseline`:
/// `100 · (baseline - value) / baseline`. Positive means improvement.
/// Returns 0 when the baseline is non-positive.
pub fn reduction_pct(baseline: f64, value: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - value) / baseline
    }
}

/// Per-job percentage reductions in response time of `run` vs `baseline`
/// (matched by job id; jobs missing from either run are skipped). The input
/// of Fig 8(b)'s CDF.
pub fn per_job_reduction(baseline: &RunReport, run: &RunReport) -> Vec<(JobId, f64)> {
    run.jobs
        .iter()
        .filter_map(|j| {
            baseline
                .jobs
                .iter()
                .find(|b| b.id == j.id)
                .map(|b| (j.id, reduction_pct(b.response, j.response)))
        })
        .collect()
}

/// Aggregate WAN-usage reduction of `run` vs `baseline`, in percent.
pub fn wan_reduction_pct(baseline: &RunReport, run: &RunReport) -> f64 {
    reduction_pct(baseline.total_wan_gb, run.total_wan_gb)
}

/// Per-job slowdowns: response time divided by the job's isolated service
/// time (§6.1 "Performance Metrics"). `isolated[i]` must hold the service
/// time of the job with the same index in `run.jobs`.
///
/// # Panics
///
/// Panics if lengths differ or an isolated time is non-positive.
pub fn slowdowns(run: &RunReport, isolated: &[f64]) -> Vec<f64> {
    assert_eq!(run.jobs.len(), isolated.len());
    run.jobs
        .iter()
        .zip(isolated)
        .map(|(j, &iso)| {
            assert!(iso > 0.0, "isolated service time must be positive");
            j.response / iso
        })
        .collect()
}

/// Jain's fairness index of a set of allocations/slowdowns: 1 is perfectly
/// fair, `1/n` is maximally unfair.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_sim::JobOutcome;

    fn report(responses: &[f64]) -> RunReport {
        RunReport {
            scheduler: "t".into(),
            jobs: responses
                .iter()
                .enumerate()
                .map(|(i, &r)| JobOutcome {
                    id: JobId(i),
                    name: format!("j{i}"),
                    arrival: 0.0,
                    finished: r,
                    response: r,
                    wan_gb: 1.0,
                    num_stages: 1,
                    total_tasks: 1,
                    input_gb: 1.0,
                    intermediate_gb: 0.5,
                    input_skew_cv: 0.0,
                    est_error: 0.0,
                    stage_spans: Vec::new(),
                })
                .collect(),
            makespan: 0.0,
            total_wan_gb: responses.len() as f64,
            sched_invocations: 0,
            sched_wall_secs: 0.0,
            copies_launched: 0,
            copies_won: 0,
            task_failures: 0,
            dynamics_events: 0,
            trace: Vec::new(),
            obs: None,
        }
    }

    #[test]
    fn reduction_math() {
        assert_eq!(reduction_pct(100.0, 45.0), 55.0);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
        assert_eq!(reduction_pct(10.0, 12.0), -20.0);
    }

    #[test]
    fn per_job_matches_by_id() {
        let base = report(&[10.0, 20.0]);
        let run = report(&[5.0, 20.0]);
        let red = per_job_reduction(&base, &run);
        assert_eq!(red.len(), 2);
        assert_eq!(red[0].1, 50.0);
        assert_eq!(red[1].1, 0.0);
    }

    #[test]
    fn slowdowns_divide_by_isolated() {
        let run = report(&[10.0, 6.0]);
        let s = slowdowns(&run, &[5.0, 6.0]);
        assert_eq!(s, vec![2.0, 1.0]);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
        let unfair = jain_index(&[1.0, 0.0, 0.0]);
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
    }
}
