//! Bucketed gain characterization (Fig 12).
//!
//! Fig 12 groups per-job gains by a workload characteristic (the
//! intermediate/input ratio, input skew CV, intermediate skew CV or the
//! estimation error) and reports, per bucket, the fraction of queries that
//! fall into it and the mean gain within it.

/// One bucket of the characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Human-readable range label (e.g. `"0.2-0.5"`).
    pub label: String,
    /// Number of jobs in the bucket.
    pub count: usize,
    /// Fraction of all jobs that landed in this bucket (the "Queries (%)"
    /// bars of Fig 12).
    pub fraction: f64,
    /// Mean gain within the bucket (the "Gains (%)" bars).
    pub mean_gain: f64,
}

/// Buckets `(key, gain)` pairs by `edges` (ascending interior boundaries).
///
/// With edges `[a, b]`, three buckets form: `< a`, `a..b`, `>= b` — the
/// `<x / x-y / >z` layout of the paper's figures.
///
/// # Panics
///
/// Panics if `edges` is empty or not strictly increasing.
pub fn bucket_by(pairs: &[(f64, f64)], edges: &[f64]) -> Vec<Bucket> {
    assert!(!edges.is_empty(), "need at least one boundary");
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "edges must be strictly increasing"
    );
    let n_buckets = edges.len() + 1;
    let mut counts = vec![0usize; n_buckets];
    let mut sums = vec![0.0f64; n_buckets];
    for &(key, gain) in pairs {
        let b = edges.partition_point(|&e| key >= e);
        counts[b] += 1;
        sums[b] += gain;
    }
    let total: usize = counts.iter().sum();
    (0..n_buckets)
        .map(|b| {
            let label = if b == 0 {
                format!("<{}", edges[0])
            } else if b == edges.len() {
                format!(">={}", edges[b - 1])
            } else {
                format!("{}-{}", edges[b - 1], edges[b])
            };
            Bucket {
                label,
                count: counts[b],
                fraction: if total == 0 {
                    0.0
                } else {
                    counts[b] as f64 / total as f64
                },
                mean_gain: if counts[b] == 0 {
                    0.0
                } else {
                    sums[b] / counts[b] as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_and_average() {
        let pairs = [(0.1, 10.0), (0.3, 20.0), (0.4, 40.0), (1.5, 50.0)];
        let b = bucket_by(&pairs, &[0.2, 0.5, 1.0]);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0].count, 1);
        assert_eq!(b[1].count, 2);
        assert_eq!(b[1].mean_gain, 30.0);
        assert_eq!(b[2].count, 0);
        assert_eq!(b[2].mean_gain, 0.0);
        assert_eq!(b[3].count, 1);
        let total: f64 = b.iter().map(|x| x.fraction).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_values_go_right() {
        let b = bucket_by(&[(0.2, 1.0)], &[0.2]);
        assert_eq!(b[0].count, 0);
        assert_eq!(b[1].count, 1);
        assert_eq!(b[1].label, ">=0.2");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_bad_edges() {
        bucket_by(&[], &[1.0, 1.0]);
    }
}
