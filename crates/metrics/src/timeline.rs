//! Timeline analysis over task traces: where did the time go?

use tetrium_sim::TaskTrace;

/// Per-site busy time (slot-seconds of occupancy) over a trace.
pub fn site_busy_secs(trace: &[TaskTrace], n_sites: usize) -> Vec<f64> {
    let mut busy = vec![0.0; n_sites];
    for t in trace {
        busy[t.site.index()] += (t.finished_at - t.launched_at).max(0.0);
    }
    busy
}

/// Per-site slot utilization over `[0, makespan]`: busy slot-seconds divided
/// by available slot-seconds.
///
/// The ratio is returned *unclamped*: a value meaningfully above 1 means the
/// engine oversubscribed a site's slots, and silently clamping here would
/// mask that bug. Consumers that need a bounded value (plots, summaries)
/// clamp at the display layer; the engine-conservation tests assert
/// `<= 1 + eps` instead.
pub fn site_utilization(trace: &[TaskTrace], slots: &[usize], makespan: f64) -> Vec<f64> {
    let busy = site_busy_secs(trace, slots.len());
    slots
        .iter()
        .zip(busy)
        .map(|(&s, b)| {
            if makespan <= 0.0 || s == 0 {
                0.0
            } else {
                b / (s as f64 * makespan)
            }
        })
        .collect()
}

/// Splits total slot occupancy into fetch and compute seconds — the
/// "where does a slot's time go" diagnostic behind the paper's argument
/// that network transfers must be scheduled, not just compute.
pub fn fetch_compute_split(trace: &[TaskTrace]) -> (f64, f64) {
    trace.iter().fold((0.0, 0.0), |(f, c), t| {
        (f + t.fetch_secs(), c + t.compute_secs())
    })
}

/// Fraction of tasks whose result came from a speculative copy.
pub fn copy_win_fraction(trace: &[TaskTrace]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().filter(|t| t.was_copy).count() as f64 / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_cluster::SiteId;
    use tetrium_jobs::JobId;

    fn tr(site: usize, launched: f64, compute: f64, done: f64, was_copy: bool) -> TaskTrace {
        TaskTrace {
            job: JobId(0),
            stage: 0,
            task: 0,
            site: SiteId(site),
            launched_at: launched,
            compute_started: compute,
            finished_at: done,
            was_copy,
        }
    }

    #[test]
    fn busy_and_utilization() {
        let trace = vec![tr(0, 0.0, 1.0, 3.0, false), tr(1, 2.0, 2.0, 4.0, false)];
        let busy = site_busy_secs(&trace, 2);
        assert_eq!(busy, vec![3.0, 2.0]);
        let util = site_utilization(&trace, &[1, 2], 4.0);
        assert!((util[0] - 0.75).abs() < 1e-12);
        assert!((util[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fetch_compute_accounting() {
        let trace = vec![tr(0, 0.0, 1.5, 3.0, false)];
        let (fetch, compute) = fetch_compute_split(&trace);
        assert!((fetch - 1.5).abs() < 1e-12);
        assert!((compute - 1.5).abs() < 1e-12);
    }

    #[test]
    fn copy_fraction() {
        let trace = vec![tr(0, 0.0, 0.0, 1.0, false), tr(0, 0.0, 0.0, 1.0, true)];
        assert_eq!(copy_win_fraction(&trace), 0.5);
        assert_eq!(copy_win_fraction(&[]), 0.0);
    }

    #[test]
    fn utilization_handles_degenerate_inputs() {
        assert_eq!(site_utilization(&[], &[4], 0.0), vec![0.0]);
    }

    #[test]
    fn utilization_reports_oversubscription_unclamped() {
        // Two slot-seconds of busy time on a 1-slot site over 1 second: a
        // ratio of 2.0 must surface, not be clamped to 1.0.
        let trace = vec![tr(0, 0.0, 0.0, 1.0, false), tr(0, 0.0, 0.0, 1.0, false)];
        let util = site_utilization(&trace, &[1], 1.0);
        assert!((util[0] - 2.0).abs() < 1e-12);
    }
}
