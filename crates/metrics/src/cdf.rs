//! Empirical CDFs (Fig 2, Fig 8b).

/// An empirical cumulative distribution over a sample.
///
/// # Examples
///
/// ```
/// use tetrium_metrics::Cdf;
/// let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(c.quantile(0.5), Some(3.0));
/// assert_eq!(c.fraction_leq(2.5), 0.5);
/// assert_eq!(Cdf::new(vec![]).quantile(0.5), None);
/// ```
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from a sample (non-finite values are dropped).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.total_cmp(b));
        Self { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0..=1) by nearest rank, or `None` for an empty
    /// sample. An empty CDF is a legitimate state (e.g. a figure slice
    /// over a scheduler that admitted no jobs), so it is a value, not a
    /// panic — callers decide how to render the absence.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range (that one is caller error).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `(value, cumulative fraction)` pairs suitable for plotting; thinned
    /// to at most `max_points` evenly spaced points.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || max_points == 0 {
            return Vec::new();
        }
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_fractions() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.fraction_leq(2.5), 0.5);
        assert_eq!(c.fraction_leq(0.0), 0.0);
        assert_eq!(c.fraction_leq(10.0), 1.0);
    }

    #[test]
    fn empty_cdf_quantile_is_none_not_panic() {
        // Regression: this used to assert and take the whole figure run
        // down when a slice came back with zero samples.
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.0), None);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.quantile(1.0), None);
        assert_eq!(c.fraction_leq(1.0), 0.0);
        assert!(c.points(10).is_empty());
        // Dropping every non-finite sample leaves an empty CDF too.
        assert_eq!(Cdf::new(vec![f64::NAN]).quantile(0.5), None);
    }

    #[test]
    fn drops_non_finite() {
        let c = Cdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let pts = c.points(10);
        assert!(pts.len() <= 12);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }
}
