//! Trace export in Chrome trace-event format.
//!
//! A recorded run (`EngineConfig::record_trace`) can be dumped to the JSON
//! array format that `chrome://tracing` / Perfetto render as a Gantt chart:
//! one row per site, one bar per task, fetch and compute phases as nested
//! slices. Handy for eyeballing wave structure and placement decisions.

use tetrium_sim::TaskTrace;

/// Serializes task traces as a Chrome trace-event JSON array.
///
/// Each site becomes a "process" row (`pid` = site index); each task emits
/// a complete event (`ph: "X"`) for its slot occupancy and a nested one for
/// its compute phase. Times are exported in microseconds as the format
/// expects.
pub fn chrome_trace(trace: &[TaskTrace]) -> String {
    let mut events = Vec::with_capacity(trace.len() * 2 + 1);
    for t in trace {
        let name = format!(
            "{}/s{}/t{}{}",
            t.job,
            t.stage,
            t.task,
            if t.was_copy { " (copy)" } else { "" }
        );
        let pid = t.site.index();
        // Slot occupancy (fetch + compute).
        events.push(serde_json::json!({
            "name": name,
            "cat": "task",
            "ph": "X",
            "pid": pid,
            "tid": t.task % 64,
            "ts": (t.launched_at * 1e6) as i64,
            "dur": (((t.finished_at - t.launched_at).max(0.0)) * 1e6) as i64,
            "args": {
                "job": t.job.index(),
                "stage": t.stage,
                "fetch_s": t.fetch_secs(),
                "compute_s": t.compute_secs(),
                "copy": t.was_copy,
            },
        }));
        if t.compute_secs() > 0.0 {
            events.push(serde_json::json!({
                "name": "compute",
                "cat": "phase",
                "ph": "X",
                "pid": pid,
                "tid": t.task % 64,
                "ts": (t.compute_started * 1e6) as i64,
                "dur": (t.compute_secs() * 1e6) as i64,
            }));
        }
    }
    serde_json::to_string(&events).expect("trace events serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_cluster::SiteId;
    use tetrium_jobs::JobId;

    fn tr(task: usize, copy: bool) -> TaskTrace {
        TaskTrace {
            job: JobId(1),
            stage: 0,
            task,
            site: SiteId(2),
            launched_at: 1.0,
            compute_started: 1.5,
            finished_at: 3.0,
            was_copy: copy,
        }
    }

    #[test]
    fn emits_valid_json_with_expected_fields() {
        let out = chrome_trace(&[tr(0, false), tr(1, true)]);
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        let events = parsed.as_array().unwrap();
        // Two tasks x (occupancy + compute slice).
        assert_eq!(events.len(), 4);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["pid"], 2);
        assert_eq!(events[0]["ts"], 1_000_000);
        assert_eq!(events[0]["dur"], 2_000_000);
        assert!(events[2]["name"].as_str().unwrap().contains("(copy)"));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let parsed: serde_json::Value = serde_json::from_str(&chrome_trace(&[])).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }
}
