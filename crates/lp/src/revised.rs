//! Sparse bounded-variable revised simplex — the default solver backend.
//!
//! Works on the shared [`NormSystem`] (CSC-stored normalized constraints,
//! `[structural | slack | artificial]` column layout) and never materializes
//! a tableau. The basis inverse is represented as a sparse LU factorization
//! ([`crate::sparsela::SparseLu`]) composed with a product-form eta file;
//! every pivot appends one eta (the FTRAN'd entering column), and the basis
//! is refactorized from scratch every [`REFACTOR_EVERY`] pivots or when a
//! pivot element is too small to divide by safely. Variable upper bounds are
//! handled natively: each column carries a status (basic / at lower bound /
//! at upper bound), the ratio test considers leaving-to-upper and
//! bound-flip steps, and `ub = 0` columns are simply never allowed to enter
//! (which is how the placement models pin dead sources without emitting
//! constraint rows, and how artificials are retired after phase 1 without
//! dropping redundant rows).
//!
//! Entering selection is Dantzig's rule for a warm-up period, then Bland's
//! rule; the canonical face cleanup afterwards minimizes the shared
//! `sqrt(j + 2)` secondary objective over the primary-optimal face exactly
//! like the dense oracle does, so both backends finish at the same vertex
//! and the shared refinement in [`crate::norm`] returns the same bits.

use crate::norm::{bounded_rhs, refine_canonical, refine_from_basis, ColDef, NormSystem};
use crate::problem::Constraint;
use crate::sparsela::SparseLu;
use crate::types::{bounds_sig, relation_sig, Basis, LpError, Solution, EPS, FACE_EPS};

/// Pivot threshold for basis refactorizations.
const LU_TOL: f64 = 1e-11;

/// Refactorize after this many etas have accumulated.
const REFACTOR_EVERY: usize = 64;

/// Pivot elements smaller than this trigger an immediate refactorization
/// instead of an eta (dividing by them would amplify error).
const ETA_TOL: f64 = 1e-7;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    Lower,
    Upper,
}

/// One product-form update: basis position `r` was replaced; `w` is the
/// FTRAN'd entering column (entries exclude position `r`).
struct Eta {
    r: u32,
    wr: f64,
    w: Vec<(u32, f64)>,
}

struct Rev<'a> {
    sys: &'a NormSystem,
    /// Current upper bound of every internal column (structural bounds from
    /// the user; artificials drop from `+∞` to `0` after phase 1).
    ub: Vec<f64>,
    status: Vec<Status>,
    basis_cols: Vec<usize>,
    /// Values of the basic variables, by basis position.
    xb: Vec<f64>,
    lu: SparseLu,
    etas: Vec<Eta>,
    pivots: usize,
}

impl<'a> Rev<'a> {
    /// Sets up the all-slack/artificial initial basis (phase-1 start).
    fn cold_start(sys: &'a NormSystem, upper: &[f64]) -> Result<Self, LpError> {
        let m = sys.m();
        let mut ub = vec![f64::INFINITY; sys.total_cols];
        ub[..sys.num_vars].copy_from_slice(upper);
        let mut status = vec![Status::Lower; sys.total_cols];
        let basis_cols = sys.init_basis.clone();
        for &c in &basis_cols {
            status[c] = Status::Basic;
        }
        let mut rev = Rev {
            sys,
            ub,
            status,
            basis_cols,
            xb: vec![0.0; m],
            lu: SparseLu::factorize(0, |_, _| {}, LU_TOL).expect("empty LU"),
            etas: Vec::new(),
            pivots: 0,
        };
        rev.refactor()?;
        Ok(rev)
    }

    /// Sets up directly from a stored basis + at-upper set (phase-2 start).
    /// Returns `None` when the basis is singular or primal-infeasible for
    /// this problem's data — the caller then falls back to a cold solve.
    fn warm_start(sys: &'a NormSystem, upper: &[f64], warm: &Basis) -> Option<Self> {
        let m = sys.m();
        let mut ub = vec![f64::INFINITY; sys.total_cols];
        ub[..sys.num_vars].copy_from_slice(upper);
        // Artificials are already retired in a terminal basis.
        ub[sys.art_start..].fill(0.0);
        let mut status = vec![Status::Lower; sys.total_cols];
        let basis_cols = warm.cols.clone();
        for &c in &basis_cols {
            if c >= sys.total_cols {
                return None;
            }
            status[c] = Status::Basic;
        }
        for &j in &warm.upper {
            if j >= sys.num_vars || !ub[j].is_finite() || ub[j] <= 0.0 {
                return None;
            }
            if status[j] == Status::Basic {
                continue;
            }
            status[j] = Status::Upper;
        }
        let mut rev = Rev {
            sys,
            ub,
            status,
            basis_cols,
            xb: vec![0.0; m],
            lu: SparseLu::factorize(0, |_, _| {}, LU_TOL).expect("empty LU"),
            etas: Vec::new(),
            pivots: 0,
        };
        if rev.refactor().is_err() {
            return None;
        }
        // Primal feasibility of the stored vertex under the new data.
        for (i, &c) in rev.basis_cols.iter().enumerate() {
            if rev.xb[i] < -1e-7 || rev.xb[i] > rev.ub[c] + 1e-7 {
                return None;
            }
        }
        Some(rev)
    }

    /// Rebuilds the LU factorization of the current basis and recomputes the
    /// basic values from scratch.
    fn refactor(&mut self) -> Result<(), LpError> {
        let m = self.sys.m();
        let sys = self.sys;
        let cols = &self.basis_cols;
        self.lu = SparseLu::factorize(
            m,
            |k, out| sys.for_col(cols[k], |r, v| out.push((r as u32, v))),
            LU_TOL,
        )
        .ok_or(LpError::IterationLimit)?;
        self.etas.clear();
        let at_upper = self.at_upper();
        let mut b = bounded_rhs(self.sys, &self.ub[..self.sys.num_vars], &at_upper);
        self.lu.solve_in_place(&mut b);
        self.xb = b;
        Ok(())
    }

    /// Sorted structural columns currently at their (positive) upper bound.
    fn at_upper(&self) -> Vec<usize> {
        (0..self.sys.num_vars)
            .filter(|&j| self.status[j] == Status::Upper)
            .collect()
    }

    /// FTRAN: `v <- B⁻¹ v` (`v` in original row coordinates in, basis
    /// positions out).
    fn ftran(&self, v: &mut [f64]) {
        self.lu.solve_in_place(v);
        for eta in &self.etas {
            let r = eta.r as usize;
            let t = v[r] / eta.wr;
            if t != 0.0 {
                for &(i, wi) in &eta.w {
                    v[i as usize] -= wi * t;
                }
            }
            v[r] = t;
        }
    }

    /// BTRAN: `v <- B⁻ᵀ v` (`v` indexed by basis position in, original row
    /// coordinates out).
    fn btran(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let r = eta.r as usize;
            let mut acc = v[r];
            for &(i, wi) in &eta.w {
                acc -= wi * v[i as usize];
            }
            v[r] = acc / eta.wr;
        }
        self.lu.solve_transpose_in_place(v);
    }

    /// Simplex multipliers for cost vector `cost` (indexed by internal
    /// column): `y = B⁻ᵀ c_B`, in original row coordinates.
    fn multipliers(&self, cost: &[f64]) -> Vec<f64> {
        let mut cb = vec![0.0f64; self.sys.m()];
        for (i, &c) in self.basis_cols.iter().enumerate() {
            cb[i] = cost[c];
        }
        self.btran(&mut cb);
        cb
    }

    /// Reduced cost of column `j` given multipliers `y`.
    fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut dot = 0.0;
        match self.sys.col_defs[j] {
            ColDef::Structural(v) => {
                for p in self.sys.col_ptr[v]..self.sys.col_ptr[v + 1] {
                    dot += y[self.sys.col_rows[p] as usize] * self.sys.col_vals[p];
                }
            }
            ColDef::RowUnit { row, sign } => dot = y[row] * sign,
        }
        cost[j] - dot
    }

    /// A column may never enter while pinned to zero (dead-source pins and
    /// retired artificials) or barred by the caller.
    fn may_enter(&self, barred: &[bool], j: usize) -> bool {
        self.status[j] != Status::Basic && !barred[j] && self.ub[j] != 0.0
    }

    /// Runs one entering step for column `q`: ratio test, then either a
    /// bound flip or a basis change. Returns `Err(Unbounded)` when no step
    /// length limits the move.
    fn step(&mut self, q: usize) -> Result<(), LpError> {
        let m = self.sys.m();
        let dir: f64 = if self.status[q] == Status::Lower {
            1.0
        } else {
            -1.0
        };
        // w = B⁻¹ a_q.
        let mut w = vec![0.0f64; m];
        self.sys.for_col(q, |r, v| w[r] += v);
        self.ftran(&mut w);

        // Bounded ratio test: the entering variable moves by t ≥ 0 toward
        // its opposite bound; each basic variable moves by −dir·w_i·t and
        // may hit its lower or upper bound first.
        let mut t_best = self.ub[q]; // Bound-flip step length (may be +∞).
        let mut leave: Option<(usize, bool)> = None; // (basis pos, to_upper)
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0.0 {
                continue;
            }
            let s = dir * wi;
            let (t, to_upper) = if s > EPS {
                ((self.xb[i] / s).max(0.0), false)
            } else if s < -EPS {
                let ub_i = self.ub[self.basis_cols[i]];
                if !ub_i.is_finite() {
                    continue;
                }
                (((ub_i - self.xb[i]) / -s).max(0.0), true)
            } else {
                continue;
            };
            let better = match leave {
                _ if t < t_best => true,
                None => false,
                // Exact tie: prefer the smallest leaving column index
                // (Bland-compatible, deterministic).
                Some((pi, _)) => t == t_best && self.basis_cols[i] < self.basis_cols[pi],
            };
            if better {
                t_best = t;
                leave = Some((i, to_upper));
            }
        }

        match leave {
            None => {
                if !t_best.is_finite() {
                    return Err(LpError::Unbounded);
                }
                // Bound flip: q jumps to its opposite bound, basics absorb.
                for (i, &wi) in w.iter().enumerate() {
                    if wi != 0.0 {
                        self.xb[i] -= wi * dir * t_best;
                    }
                }
                self.status[q] = if self.status[q] == Status::Lower {
                    Status::Upper
                } else {
                    Status::Lower
                };
                self.pivots += 1;
                Ok(())
            }
            Some((r, to_upper)) => {
                let entering_value = if dir > 0.0 {
                    t_best
                } else {
                    self.ub[q] - t_best
                };
                for (i, &wi) in w.iter().enumerate() {
                    if i != r && wi != 0.0 {
                        self.xb[i] -= wi * dir * t_best;
                    }
                }
                let leaving = self.basis_cols[r];
                self.status[leaving] = if to_upper {
                    Status::Upper
                } else {
                    Status::Lower
                };
                self.status[q] = Status::Basic;
                self.basis_cols[r] = q;
                self.xb[r] = entering_value;
                self.pivots += 1;
                let wr = w[r];
                if wr.abs() < ETA_TOL || self.etas.len() + 1 >= REFACTOR_EVERY {
                    self.refactor()
                } else {
                    let entries: Vec<(u32, f64)> = w
                        .iter()
                        .enumerate()
                        .filter(|&(i, &wi)| i != r && wi != 0.0)
                        .map(|(i, &wi)| (i as u32, wi))
                        .collect();
                    self.etas.push(Eta {
                        r: r as u32,
                        wr,
                        w: entries,
                    });
                    Ok(())
                }
            }
        }
    }

    /// Runs simplex iterations to optimality for `cost` (Dantzig warm-up,
    /// then Bland's rule).
    fn optimize(&mut self, cost: &[f64], barred: &[bool]) -> Result<(), LpError> {
        let n = self.sys.total_cols;
        let limit = 200 * (self.sys.m() + n) + 1000;
        let dantzig_until = 20 * (self.sys.m() + n) + 200;
        for iter in 0..limit {
            let y = self.multipliers(cost);
            let entering = if iter < dantzig_until {
                // Dantzig: largest bound-violation of the reduced-cost sign
                // condition; ties go to the smallest column index.
                let mut best = None;
                let mut best_v = EPS;
                for j in 0..n {
                    if !self.may_enter(barred, j) {
                        continue;
                    }
                    let d = self.reduced_cost(cost, &y, j);
                    let viol = match self.status[j] {
                        Status::Lower => -d,
                        Status::Upper => d,
                        Status::Basic => unreachable!(),
                    };
                    if viol > best_v {
                        best_v = viol;
                        best = Some(j);
                    }
                }
                best
            } else {
                (0..n).find(|&j| {
                    self.may_enter(barred, j) && {
                        let d = self.reduced_cost(cost, &y, j);
                        match self.status[j] {
                            Status::Lower => d < -EPS,
                            Status::Upper => d > EPS,
                            Status::Basic => false,
                        }
                    }
                })
            };
            let Some(q) = entering else {
                return Ok(());
            };
            self.step(q)?;
        }
        Err(LpError::IterationLimit)
    }

    /// Minimizes the shared `sqrt(j + 2)` secondary objective over the
    /// current primary-optimal face — same semantics as the dense oracle's
    /// face cleanup, so both backends leave at the same canonical vertex.
    /// Entering is Bland-style (smallest eligible index).
    fn optimize_face(&mut self, cost: &[f64], barred: &[bool]) -> Result<(), LpError> {
        let n = self.sys.total_cols;
        let sec: Vec<f64> = (0..n).map(|j| ((j + 2) as f64).sqrt()).collect();
        let limit = 200 * (self.sys.m() + n) + 1000;
        for _ in 0..limit {
            let y1 = self.multipliers(cost);
            let y2 = self.multipliers(&sec);
            let entering = (0..n).find(|&j| {
                self.may_enter(barred, j) && self.reduced_cost(cost, &y1, j).abs() <= FACE_EPS && {
                    let s2 = self.reduced_cost(&sec, &y2, j);
                    match self.status[j] {
                        Status::Lower => s2 < -FACE_EPS,
                        Status::Upper => s2 > FACE_EPS,
                        Status::Basic => false,
                    }
                }
            });
            let Some(q) = entering else {
                return Ok(());
            };
            self.step(q)?;
        }
        Err(LpError::IterationLimit)
    }

    /// Phase-1 objective value: total residual in the artificial columns.
    fn artificial_residual(&self) -> f64 {
        self.basis_cols
            .iter()
            .zip(&self.xb)
            .filter(|&(&c, _)| c >= self.sys.art_start)
            .map(|(_, &x)| x.max(0.0))
            .sum()
    }

    /// Retires the artificials after phase 1: pinned to zero, never to
    /// re-enter. Basic artificials may remain (redundant rows) — they sit
    /// within tolerance of zero and the entering bar keeps them there.
    fn retire_artificials(&mut self) {
        for c in self.sys.art_start..self.sys.total_cols {
            self.ub[c] = 0.0;
        }
    }

    /// Extracts the final [`Solution`] through the shared canonical
    /// refinement (with terminal-basis and raw-state fallbacks).
    fn extract(
        mut self,
        objective: &[f64],
        upper: &[f64],
        sig: u64,
        bsig: u64,
        warm_started: bool,
    ) -> Solution {
        let mut basis_cols = self.basis_cols.clone();
        basis_cols.sort_unstable();
        let at_upper = self.at_upper();
        let refined = refine_canonical(self.sys, objective, upper, &at_upper, &basis_cols)
            .or_else(|| refine_from_basis(self.sys, objective, upper, &at_upper, &basis_cols));
        let (values, duals, objective_value) = match refined {
            Some(r) => r,
            None => self.raw_package(objective),
        };
        Solution {
            values,
            objective: objective_value,
            duals,
            pivots: self.pivots,
            basis: Basis {
                cols: basis_cols,
                num_vars: self.sys.num_vars,
                sig,
                bsig,
                upper: at_upper,
            },
            warm_started,
        }
    }

    /// Last-resort packaging straight from solver state, used only when the
    /// refinement LU rejects the terminal basis (numerically singular).
    fn raw_package(&mut self, objective: &[f64]) -> (Vec<f64>, Vec<f64>, f64) {
        let mut values = vec![0.0; self.sys.num_vars];
        for (j, v) in values.iter_mut().enumerate() {
            if self.status[j] == Status::Upper {
                *v = self.ub[j];
            }
        }
        for (i, &c) in self.basis_cols.iter().enumerate() {
            if let ColDef::Structural(j) = self.sys.col_defs[c] {
                if j < self.sys.num_vars {
                    values[j] = self.xb[i].max(0.0).min(self.ub[j]);
                }
            }
        }
        let objective_value = values
            .iter()
            .zip(objective)
            .map(|(x, c)| x * c)
            .sum::<f64>();
        let mut cost = vec![0.0; self.sys.total_cols];
        cost[..self.sys.num_vars].copy_from_slice(objective);
        let y = self.multipliers(&cost);
        let duals = self
            .sys
            .rows
            .iter()
            .zip(&y)
            .map(|(row, &yr)| {
                let v = yr / row.scale;
                if row.flipped {
                    -v
                } else {
                    v
                }
            })
            .collect();
        (values, duals, objective_value)
    }
}

/// Solves `min c^T x` s.t. `constraints`, `0 ≤ x ≤ upper`, optionally
/// warm-started from a stored basis. The cost vector must already be in
/// minimization sense. This is the default backend behind
/// [`crate::Problem::solve`] and [`crate::Problem::solve_from_basis`].
pub(crate) fn solve_sparse(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
    upper: &[f64],
    warm: Option<&Basis>,
) -> Result<Solution, LpError> {
    let sys = NormSystem::build(num_vars, constraints);
    let sig = relation_sig(constraints);
    let bsig = bounds_sig(upper);

    // Phase-2 cost vector and entering bars (artificials never re-enter;
    // ub = 0 pins are enforced inside `may_enter`).
    let mut c2 = vec![0.0; sys.total_cols];
    c2[..num_vars].copy_from_slice(objective);
    let barred_p2: Vec<bool> = (0..sys.total_cols).map(|c| c >= sys.art_start).collect();

    // Warm attempt: re-establish the stored vertex and skip phase 1.
    if let Some(b) = warm {
        let shape_ok =
            b.num_vars == num_vars && b.cols.len() == sys.m() && b.sig == sig && b.bsig == bsig;
        if shape_ok {
            if let Some(mut rev) = Rev::warm_start(&sys, upper, b) {
                if rev.optimize(&c2, &barred_p2).is_ok()
                    && rev.optimize_face(&c2, &barred_p2).is_ok()
                {
                    return Ok(rev.extract(objective, upper, sig, bsig, true));
                }
            }
        }
    }

    let mut rev = Rev::cold_start(&sys, upper)?;

    // Phase 1: minimize the sum of artificials.
    if sys.total_cols > sys.art_start {
        let mut c1 = vec![0.0; sys.total_cols];
        for c in c1.iter_mut().skip(sys.art_start) {
            *c = 1.0;
        }
        let barred_p1 = vec![false; sys.total_cols];
        rev.optimize(&c1, &barred_p1)?;
        if rev.artificial_residual() > 1e-7 {
            return Err(LpError::Infeasible);
        }
        rev.retire_artificials();
    }

    // Phase 2 + canonical face cleanup.
    rev.optimize(&c2, &barred_p2)?;
    rev.optimize_face(&c2, &barred_p2)?;
    Ok(rev.extract(objective, upper, sig, bsig, false))
}
