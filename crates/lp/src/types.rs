//! Shared solver types: errors, exported bases, solutions, tolerances and
//! layout signatures. Used by both the sparse revised simplex
//! ([`crate::revised`], the default path) and the retained dense tableau
//! solver ([`crate::simplex`], the audit oracle).

use crate::problem::{Constraint, Relation};

/// Absolute tolerance used for all feasibility and pivoting comparisons.
///
/// Rows are rescaled to unit max-magnitude before solving, so an absolute
/// tolerance behaves like a relative one.
pub(crate) const EPS: f64 = 1e-9;

/// Tolerance for membership of the primary-optimal face during the
/// canonical-path secondary cleanup: a column may enter only while its
/// primary reduced cost is within this of zero. Looser than [`EPS`] so that
/// float noise in the priced cost row cannot make two pivot paths disagree
/// about which columns lie on the face.
pub(crate) const FACE_EPS: f64 = 1e-7;

/// Threshold below which a vertex coordinate does not count toward the
/// vertex support during canonical refinement.
pub(crate) const SUPPORT_EPS: f64 = 1e-7;

/// Errors reported by the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The pivot-iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal simplex basis, exportable from one solve and usable to
/// warm-start another solve of a structurally identical problem.
///
/// Opaque on purpose: the column indices refer to the solver's internal
/// `[structural | slack | artificial]` layout, which is only meaningful for
/// a problem with the same variable count and relation sequence. Problems
/// with upper-bounded variables additionally record which variables sat at
/// their upper bound at the optimum, so a warm start can re-establish the
/// full vertex, and a bound-pattern signature so a basis is only replayed
/// against a problem whose bound structure matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Sorted basic column indices.
    pub(crate) cols: Vec<usize>,
    /// Structural variable count of the originating problem.
    pub(crate) num_vars: usize,
    /// Signature of the constraint-relation sequence (layout determinant).
    pub(crate) sig: u64,
    /// Signature of the variable bound pattern (none / pinned / finite).
    pub(crate) bsig: u64,
    /// Sorted structural columns nonbasic at a positive finite upper bound.
    pub(crate) upper: Vec<usize>,
}

impl Basis {
    /// Number of basic columns (equals the surviving row count of the
    /// originating solve).
    pub fn num_basic(&self) -> usize {
        self.cols.len()
    }

    /// Whether this basis can even be *attempted* against a problem with
    /// `num_vars` variables and the given constraints (shape check only;
    /// feasibility is decided during the warm solve itself). Bound patterns
    /// are checked separately by the warm solve — a basis exported from an
    /// unbounded-variable problem carries the no-bounds signature.
    pub fn compatible_with(&self, num_vars: usize, constraints: &[Constraint]) -> bool {
        self.num_vars == num_vars
            && self.cols.len() == constraints.len()
            && self.sig == relation_sig(constraints)
    }
}

/// Signature of a constraint list's relation sequence; together with the
/// variable count it fully determines the internal column layout.
pub(crate) fn relation_sig(constraints: &[Constraint]) -> u64 {
    let mut sig: u64 = 0xcbf29ce484222325;
    for c in constraints {
        let code = match c.relation {
            Relation::Le => 1u64,
            Relation::Ge => 2,
            Relation::Eq => 3,
        };
        sig = sig.wrapping_mul(0x100000001b3).wrapping_add(code);
    }
    sig
}

/// Signature of a problem's variable-bound *pattern*: per variable, whether
/// it is unbounded above, pinned to zero, or carries a positive finite
/// upper bound. Bound *values* may drift between warm-started solves (like
/// coefficients and right-hand sides do); the pattern is structural.
pub(crate) fn bounds_sig(upper: &[f64]) -> u64 {
    let mut sig: u64 = 0x9e3779b97f4a7c15;
    for &u in upper {
        let code = if u.is_infinite() {
            0u64
        } else if u == 0.0 {
            1
        } else {
            2
        };
        sig = sig.wrapping_mul(0x100000001b3).wrapping_add(code);
    }
    sig
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value of each decision variable (non-negative).
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the problem's original sense).
    pub objective: f64,
    /// Shadow price of each constraint, in input order: the marginal change
    /// of the optimal objective per unit increase of that constraint's
    /// right-hand side (in the problem's original sense). Zero for
    /// non-binding constraints; one valid assignment when duals are
    /// degenerate. In the placement models these read as "seconds saved per
    /// extra GB/s on this link / per extra slot at this site".
    pub duals: Vec<f64>,
    /// Number of simplex iterations performed across both phases (basis
    /// changes plus bound flips).
    pub pivots: usize,
    /// The optimal basis, for warm-starting a later structurally identical
    /// solve via [`crate::Problem::solve_from_basis`].
    pub basis: Basis,
    /// Whether this solve actually started from a supplied basis (`false`
    /// for cold solves and for warm attempts that fell back).
    pub warm_started: bool,
}
