//! Unit and property tests for the simplex solver.

use crate::{LpError, Problem, Relation};
use proptest::prelude::*;

fn assert_close(a: f64, b: f64) {
    assert!(
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs())),
        "expected {a} ~ {b}"
    );
}

#[test]
fn trivial_unconstrained_min_is_zero() {
    let mut p = Problem::minimize(3);
    p.set_objective(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
    let sol = p.solve().unwrap();
    assert_close(sol.objective, 0.0);
    assert!(sol.values.iter().all(|&v| v.abs() < 1e-9));
}

#[test]
fn basic_two_var_minimization() {
    // min x + 2y s.t. x + y >= 4, y <= 3.
    let mut p = Problem::minimize(2);
    p.set_objective(&[(0, 1.0), (1, 2.0)]);
    p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
    p.add_constraint(&[(1, 1.0)], Relation::Le, 3.0);
    let sol = p.solve().unwrap();
    assert_close(sol.objective, 4.0);
    assert_close(sol.values[0], 4.0);
    assert_close(sol.values[1], 0.0);
}

#[test]
fn basic_maximization() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
    let mut p = Problem::maximize(2);
    p.set_objective(&[(0, 3.0), (1, 5.0)]);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
    p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
    p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
    let sol = p.solve().unwrap();
    assert_close(sol.objective, 36.0);
    assert_close(sol.values[0], 2.0);
    assert_close(sol.values[1], 6.0);
}

#[test]
fn equality_constraints() {
    // min x + y s.t. x + 2y = 6, x - y = 0 -> x = y = 2.
    let mut p = Problem::minimize(2);
    p.set_objective(&[(0, 1.0), (1, 1.0)]);
    p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 6.0);
    p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
    let sol = p.solve().unwrap();
    assert_close(sol.values[0], 2.0);
    assert_close(sol.values[1], 2.0);
    assert_close(sol.objective, 4.0);
}

#[test]
fn negative_rhs_is_normalized() {
    // x - y <= -2 with min x means y >= x + 2; optimum x = 0 (y = 2 free in
    // objective).
    let mut p = Problem::minimize(2);
    p.set_objective(&[(0, 1.0)]);
    p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
    let sol = p.solve().unwrap();
    assert_close(sol.objective, 0.0);
    assert!(sol.values[1] >= 2.0 - 1e-9);
}

#[test]
fn detects_infeasible() {
    let mut p = Problem::minimize(1);
    p.set_objective(&[(0, 1.0)]);
    p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn detects_unbounded() {
    let mut p = Problem::maximize(1);
    p.set_objective(&[(0, 1.0)]);
    p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn redundant_equalities_do_not_break_phase1() {
    // Duplicated equality rows are redundant; phase 1 must drop them.
    let mut p = Problem::minimize(2);
    p.set_objective(&[(0, 1.0), (1, 1.0)]);
    p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
    p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
    p.add_constraint(&[(0, 2.0), (1, 2.0)], Relation::Eq, 6.0);
    let sol = p.solve().unwrap();
    assert_close(sol.objective, 3.0);
}

#[test]
fn degenerate_instance_terminates() {
    // Classic cycling-prone instance (Beale); Bland's rule must terminate.
    let mut p = Problem::minimize(4);
    p.set_objective(&[(0, -0.75), (1, 150.0), (2, -0.02), (3, 6.0)]);
    p.add_constraint(
        &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(
        &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
    let sol = p.solve().unwrap();
    assert_close(sol.objective, -0.05);
}

#[test]
fn tetrium_shaped_lp_solves() {
    // A miniature reduce-placement LP: min T_s + T_r over r_x fractions.
    // 3 sites, shuffle data I = [10, 15, 25] GB, up/down bw and slots as in
    // the paper's Figure 4.
    let i = [10.0, 15.0, 25.0];
    let up = [5.0, 1.0, 2.0];
    let down = [5.0, 1.0, 5.0];
    let slots = [40.0, 10.0, 20.0];
    let n_red = 500.0;
    let t_red = 1.0;
    let total: f64 = i.iter().sum();
    // Vars: r0, r1, r2, Tshufl (3), Tred (4).
    let mut p = Problem::minimize(5);
    p.set_objective(&[(3, 1.0), (4, 1.0)]);
    for x in 0..3 {
        // Upload: I_x (1 - r_x) / up_x <= Tshufl.
        p.add_constraint(
            &[(x, -i[x] / up[x]), (3, -1.0)],
            Relation::Le,
            -i[x] / up[x],
        );
        // Download: (total - I_x) r_x / down_x <= Tshufl.
        p.add_constraint(
            &[(x, (total - i[x]) / down[x]), (3, -1.0)],
            Relation::Le,
            0.0,
        );
        // Compute: t_red * n_red * r_x / S_x <= Tred.
        p.add_constraint(
            &[(x, t_red * n_red / slots[x]), (4, -1.0)],
            Relation::Le,
            0.0,
        );
    }
    p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Eq, 1.0);
    let sol = p.solve().unwrap();
    let r: f64 = sol.values[..3].iter().sum();
    assert_close(r, 1.0);
    assert!(sol.objective > 0.0 && sol.objective < 60.0);
}

#[test]
fn duals_match_the_textbook_instance() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: the classic duals
    // are (0, 3/2, 1).
    let mut p = Problem::maximize(2);
    p.set_objective(&[(0, 3.0), (1, 5.0)]);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
    p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
    p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
    let sol = p.solve().unwrap();
    assert_close(sol.duals[0], 0.0);
    assert_close(sol.duals[1], 1.5);
    assert_close(sol.duals[2], 1.0);
}

#[test]
fn duals_predict_rhs_perturbation() {
    // min x + 2y s.t. x + y >= 4, y <= 3: binding constraint is the first.
    let solve = |rhs: f64| {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 2.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, rhs);
        p.add_constraint(&[(1, 1.0)], Relation::Le, 3.0);
        p.solve().unwrap()
    };
    let base = solve(4.0);
    let bumped = solve(5.0);
    // dObj/dRhs of the >= constraint equals its dual.
    assert_close(bumped.objective - base.objective, base.duals[0]);
    assert_close(base.duals[1], 0.0); // Non-binding.
}

#[test]
fn equality_duals_are_reported() {
    // min x + y s.t. x + 2y = 6 (binding): raising rhs by 1 adds 0.5
    // (x stays 0, y = rhs/2).
    let solve = |rhs: f64| {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, rhs);
        p.solve().unwrap()
    };
    let base = solve(6.0);
    let bumped = solve(8.0);
    assert_close(base.duals[0], 0.5);
    assert_close(bumped.objective - base.objective, 2.0 * base.duals[0]);
}

#[test]
fn strong_duality_holds_on_random_bounded_instances() {
    // b^T y == c^T x at the optimum (strong duality), checked on a fixed
    // set of feasible bounded minimization instances.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for _ in 0..40 {
        let n = rng.gen_range(2..4);
        let mut p = Problem::minimize(n);
        let obj: Vec<(usize, f64)> = (0..n).map(|i| (i, rng.gen_range(0.1..5.0))).collect();
        p.set_objective(&obj);
        let mut rhs_list = Vec::new();
        for _ in 0..rng.gen_range(1..4) {
            let terms: Vec<(usize, f64)> = (0..n).map(|i| (i, rng.gen_range(0.1..4.0))).collect();
            let rhs = rng.gen_range(1.0..10.0);
            p.add_constraint(&terms, Relation::Ge, rhs);
            rhs_list.push(rhs);
        }
        let sol = p.solve().unwrap();
        let dual_obj: f64 = sol.duals.iter().zip(&rhs_list).map(|(y, b)| y * b).sum();
        assert!(
            (dual_obj - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
            "strong duality violated: {dual_obj} vs {}",
            sol.objective
        );
    }
}

#[test]
fn zero_variable_problem_is_trivially_optimal() {
    let p = Problem::minimize(0);
    let sol = p.solve().unwrap();
    assert!(sol.values.is_empty());
    assert_eq!(sol.objective, 0.0);
}

#[test]
fn pivot_counts_are_reported() {
    let mut p = Problem::maximize(2);
    p.set_objective(&[(0, 3.0), (1, 5.0)]);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
    p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
    p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
    let sol = p.solve().unwrap();
    assert!(sol.pivots >= 2, "needed pivots to reach (2, 6)");
}

#[test]
fn wildly_scaled_coefficients_still_solve() {
    // Bandwidths in GB/s (1e-2) against volumes in GB (1e2): the row
    // rescaling must keep the tolerance meaningful.
    let mut p = Problem::minimize(2);
    p.set_objective(&[(0, 1.0), (1, 1.0)]);
    p.add_constraint(&[(0, 1e-4), (1, 1e4)], Relation::Ge, 1.0);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 1e6);
    let sol = p.solve().unwrap();
    // Optimal: use the 1e4 coefficient: y = 1e-4, objective 1e-4.
    assert!((sol.objective - 1e-4).abs() < 1e-9);
}

#[test]
fn equality_with_zero_rhs_handles_degeneracy() {
    // x - y = 0, x + y >= 2, min x -> x = y = 1.
    let mut p = Problem::minimize(2);
    p.set_objective(&[(0, 1.0)]);
    p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
    p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
    let sol = p.solve().unwrap();
    assert_close(sol.values[0], 1.0);
    assert_close(sol.values[1], 1.0);
}

/// The miniature reduce-placement LP used by the warm-start tests: 3 sites,
/// shuffle volumes `i`, fixed bandwidths and slots.
fn reduce_shaped_lp(i: [f64; 3]) -> Problem {
    let up = [5.0, 1.0, 2.0];
    let down = [5.0, 1.0, 5.0];
    let slots = [40.0, 10.0, 20.0];
    let total: f64 = i.iter().sum();
    let mut p = Problem::minimize(5);
    p.set_objective(&[(3, 1.0), (4, 1.0)]);
    for x in 0..3 {
        p.add_constraint(
            &[(x, -i[x] / up[x]), (3, -1.0)],
            Relation::Le,
            -i[x] / up[x],
        );
        p.add_constraint(
            &[(x, (total - i[x]) / down[x]), (3, -1.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(x, 500.0 / slots[x]), (4, -1.0)], Relation::Le, 0.0);
    }
    p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Eq, 1.0);
    p
}

#[test]
fn warm_start_matches_cold_bit_exact_on_drifted_data() {
    // Solve a placement-shaped LP, drift the data distribution (as the
    // recurring workload does between instances), and re-solve both cold
    // and warm from the first solve's basis: both must land on the same
    // optimal basis and return bit-identical values, objective and duals.
    let base = reduce_shaped_lp([10.0, 15.0, 25.0]).solve().unwrap();
    assert!(!base.warm_started);
    let drifted = reduce_shaped_lp([11.0, 14.5, 24.5]);
    let cold = drifted.solve_canonical().unwrap();
    let warm = drifted.solve_from_basis(&base.basis).unwrap();
    assert!(warm.warm_started, "drifted basis should stay feasible");
    assert_eq!(warm.values, cold.values);
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    assert_eq!(warm.duals, cold.duals);
    assert_eq!(warm.basis, cold.basis);
}

#[test]
fn warm_start_identical_problem_needs_no_pivots() {
    let p = reduce_shaped_lp([10.0, 15.0, 25.0]);
    let base = p.solve_canonical().unwrap();
    let warm = p.solve_from_basis(&base.basis).unwrap();
    assert!(warm.warm_started);
    // Pivot-into-basis work only; no simplex iterations were needed, so the
    // count stays at the basis-establishment pivots (= number of rows).
    assert!(warm.pivots <= p.num_constraints());
    assert_eq!(warm.values, base.values);
    assert_eq!(warm.objective.to_bits(), base.objective.to_bits());
}

#[test]
fn warm_start_falls_back_on_shape_mismatch() {
    // A basis from a structurally different problem must be rejected and
    // the solve must silently take the cold path.
    let mut other = Problem::minimize(2);
    other.set_objective(&[(0, 1.0), (1, 2.0)]);
    other.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
    other.add_constraint(&[(1, 1.0)], Relation::Le, 3.0);
    let foreign = other.solve().unwrap();
    assert!(!foreign.basis.compatible_with(5, &[]));

    let p = reduce_shaped_lp([10.0, 15.0, 25.0]);
    let cold = p.solve_canonical().unwrap();
    let warm = p.solve_from_basis(&foreign.basis).unwrap();
    assert!(!warm.warm_started);
    assert_eq!(warm.values, cold.values);
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
}

#[test]
fn warm_start_falls_back_when_stored_basis_goes_infeasible() {
    // min x s.t. x >= rhs: at rhs = 5 the optimal basis has x basic; at
    // rhs = -5 (normalized to x <= 5 after the sign flip... relation changes)
    // the stored basis shape no longer matches; and for a same-shape change
    // the vertex may go infeasible. Use a two-constraint instance where the
    // old basis becomes primal-infeasible.
    let solve_at = |cap: f64| {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, cap);
        p
    };
    let base = solve_at(10.0).solve().unwrap(); // x = 4 basic, slack of cap row basic.
    let tight = solve_at(1.0); // Old vertex x = 4 violates x <= 1.
    let cold = tight.solve_canonical().unwrap();
    let warm = tight.solve_from_basis(&base.basis).unwrap();
    assert!(!warm.warm_started, "infeasible stored basis must fall back");
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    assert_close(warm.values[0], 1.0);
    assert_close(warm.values[1], 3.0);
}

#[test]
fn warm_start_still_detects_infeasible_problems() {
    let feasible = {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        p
    };
    let base = feasible.solve().unwrap();
    let mut contradictory = Problem::minimize(1);
    contradictory.set_objective(&[(0, 1.0)]);
    contradictory.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
    contradictory.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
    assert_eq!(
        contradictory.solve_from_basis(&base.basis).unwrap_err(),
        LpError::Infeasible
    );
}

#[test]
fn warm_start_max_sense_flips_like_cold() {
    let build = |cap: f64| {
        let mut p = Problem::maximize(2);
        p.set_objective(&[(0, 3.0), (1, 5.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, cap);
        p
    };
    let base = build(18.0).solve().unwrap();
    let drifted = build(18.5);
    let cold = drifted.solve_canonical().unwrap();
    let warm = drifted.solve_from_basis(&base.basis).unwrap();
    assert!(warm.warm_started);
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    assert_eq!(warm.duals, cold.duals);
}

/// Brute-force reference: enumerate all basic solutions (vertices) of a small
/// LP by solving every square subsystem of active constraints, keep feasible
/// ones, and return the best objective.
fn brute_force_min(
    num_vars: usize,
    objective: &[f64],
    cons: &[(Vec<f64>, Relation, f64)],
) -> Option<f64> {
    // Build the full list of hyperplanes: constraints plus x_i = 0 bounds.
    let mut planes: Vec<(Vec<f64>, f64)> = Vec::new();
    for (coef, _, rhs) in cons {
        planes.push((coef.clone(), *rhs));
    }
    for i in 0..num_vars {
        let mut c = vec![0.0; num_vars];
        c[i] = 1.0;
        planes.push((c, 0.0));
    }
    let feasible = |x: &[f64]| -> bool {
        x.iter().all(|&v| v >= -1e-7)
            && cons.iter().all(|(coef, rel, rhs)| {
                let lhs: f64 = coef.iter().zip(x).map(|(a, b)| a * b).sum();
                match rel {
                    Relation::Le => lhs <= rhs + 1e-7,
                    Relation::Ge => lhs >= rhs - 1e-7,
                    Relation::Eq => (lhs - rhs).abs() <= 1e-7,
                }
            })
    };
    let mut best: Option<f64> = None;
    let k = planes.len();
    let mut idx: Vec<usize> = (0..num_vars).collect();
    // Enumerate combinations of `num_vars` planes via odometer.
    loop {
        // Solve the square system via Gaussian elimination.
        let n = num_vars;
        let mut m = vec![0.0; n * (n + 1)];
        for (r, &pi) in idx.iter().enumerate() {
            for c in 0..n {
                m[r * (n + 1) + c] = planes[pi].0[c];
            }
            m[r * (n + 1) + n] = planes[pi].1;
        }
        let mut ok = true;
        for col in 0..n {
            let mut piv = col;
            for r in col..n {
                if m[r * (n + 1) + col].abs() > m[piv * (n + 1) + col].abs() {
                    piv = r;
                }
            }
            if m[piv * (n + 1) + col].abs() < 1e-9 {
                ok = false;
                break;
            }
            for c in 0..=n {
                m.swap(col * (n + 1) + c, piv * (n + 1) + c);
            }
            let d = m[col * (n + 1) + col];
            for c in 0..=n {
                m[col * (n + 1) + c] /= d;
            }
            for r in 0..n {
                if r != col {
                    let f = m[r * (n + 1) + col];
                    for c in 0..=n {
                        m[r * (n + 1) + c] -= f * m[col * (n + 1) + c];
                    }
                }
            }
        }
        if ok {
            let x: Vec<f64> = (0..n).map(|r| m[r * (n + 1) + n]).collect();
            if x.iter().all(|v| v.is_finite()) && feasible(&x) {
                let obj: f64 = objective.iter().zip(&x).map(|(a, b)| a * b).sum();
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
        // Advance the combination odometer.
        let mut i = num_vars;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] < k - (num_vars - i) {
                idx[i] += 1;
                for j in i + 1..num_vars {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

// The 256-case property sweep is far too slow under Miri's interpreter
// (CI's miri job runs the deterministic unit tests above instead).
#[cfg(not(miri))]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On random bounded-feasible 2-3 variable LPs, simplex matches the
    /// brute-force vertex optimum and returns a feasible point.
    #[test]
    fn simplex_matches_vertex_enumeration(
        num_vars in 2usize..4,
        seed_cons in proptest::collection::vec(
            (proptest::collection::vec(-4i32..5, 3), 0u8..2, 1i32..20),
            1..5,
        ),
        obj in proptest::collection::vec(-5i32..6, 3),
    ) {
        // Always add a box constraint so the LP is bounded.
        let mut cons: Vec<(Vec<f64>, Relation, f64)> = vec![
            ((0..num_vars).map(|_| 1.0).collect(), Relation::Le, 50.0),
        ];
        for (coef, rel, rhs) in &seed_cons {
            let c: Vec<f64> = coef.iter().take(num_vars).map(|&v| v as f64).collect();
            let rel = if *rel == 0 { Relation::Le } else { Relation::Ge };
            cons.push((c, rel, *rhs as f64));
        }
        let objective: Vec<f64> = obj.iter().take(num_vars).map(|&v| v as f64).collect();

        let mut p = Problem::minimize(num_vars);
        let terms: Vec<(usize, f64)> =
            objective.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        p.set_objective(&terms);
        for (coef, rel, rhs) in &cons {
            let terms: Vec<(usize, f64)> =
                coef.iter().enumerate().map(|(i, &c)| (i, c)).collect();
            p.add_constraint(&terms, *rel, *rhs);
        }

        let reference = brute_force_min(num_vars, &objective, &cons);
        match p.solve() {
            Ok(sol) => {
                let r = reference.expect("simplex found a solution but brute force found none");
                prop_assert!(
                    (sol.objective - r).abs() < 1e-5 * (1.0 + r.abs()),
                    "simplex {} vs reference {}", sol.objective, r
                );
                // Returned point must be feasible.
                for (coef, rel, rhs) in &cons {
                    let lhs: f64 = coef.iter().zip(&sol.values).map(|(a, b)| a * b).sum();
                    match rel {
                        Relation::Le => prop_assert!(lhs <= rhs + 1e-6),
                        Relation::Ge => prop_assert!(lhs >= rhs - 1e-6),
                        Relation::Eq => prop_assert!((lhs - rhs).abs() <= 1e-6),
                    }
                }
                for v in &sol.values {
                    prop_assert!(*v >= -1e-9);
                }
            }
            Err(LpError::Infeasible) => {
                prop_assert!(reference.is_none(), "simplex says infeasible, reference found {reference:?}");
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e:?}"))),
        }
    }

    /// Perturbing a binding constraint's RHS by a small δ moves the optimal
    /// objective by ≈ dual·δ (the defining property of shadow prices; the
    /// warm-start path re-uses duals on this assumption). Because duals are
    /// subgradients of the convex value function, the exact statement is a
    /// bracket: the change lies between base-dual·δ and bumped-dual·δ.
    #[test]
    fn duals_predict_binding_rhs_perturbation(
        seed_cons in proptest::collection::vec(
            (proptest::collection::vec(1i32..5, 3), 2i32..20),
            1..4,
        ),
        obj in proptest::collection::vec(1i32..6, 3),
        delta_mil in 1i32..50,
    ) {
        // Feasible bounded min instances: positive costs, >= constraints.
        let num_vars = 3;
        let build = |bump: Option<(usize, f64)>| {
            let mut p = Problem::minimize(num_vars);
            let terms: Vec<(usize, f64)> =
                obj.iter().enumerate().map(|(i, &c)| (i, c as f64)).collect();
            p.set_objective(&terms);
            for (ci, (coef, rhs)) in seed_cons.iter().enumerate() {
                let terms: Vec<(usize, f64)> =
                    coef.iter().enumerate().map(|(i, &c)| (i, c as f64)).collect();
                let mut rhs = *rhs as f64;
                if let Some((bi, d)) = bump {
                    if bi == ci {
                        rhs += d;
                    }
                }
                p.add_constraint(&terms, Relation::Ge, rhs);
            }
            p
        };
        let base = build(None).solve().unwrap();
        // Pick the binding constraint with the largest dual; skip the rare
        // all-slack case (origin excluded by rhs >= 2, so there is one).
        let (bi, &dual) = base
            .duals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        prop_assume!(dual > 1e-9);
        let delta = delta_mil as f64 / 1000.0;
        let bumped = build(Some((bi, delta))).solve().unwrap();
        let change = bumped.objective - base.objective;
        let lo = dual * delta;
        let hi = bumped.duals[bi] * delta;
        let tol = 1e-7 * (1.0 + base.objective.abs());
        prop_assert!(
            change >= lo.min(hi) - tol && change <= lo.max(hi) + tol,
            "objective change {change} outside dual bracket [{lo}, {hi}]"
        );
    }

    /// Warm-starting from a related instance's basis never changes the
    /// optimum: cold and warm solves of the same perturbed problem agree,
    /// and when they land on the same basis they agree bit-for-bit.
    #[test]
    fn warm_start_agrees_with_cold_on_random_perturbations(
        seed_cons in proptest::collection::vec(
            (proptest::collection::vec(1i32..5, 3), 2i32..20),
            1..4,
        ),
        obj in proptest::collection::vec(1i32..6, 3),
        scale_pct in 80i32..121,
    ) {
        let num_vars = 3;
        let build = |f: f64| {
            let mut p = Problem::minimize(num_vars);
            let terms: Vec<(usize, f64)> =
                obj.iter().enumerate().map(|(i, &c)| (i, c as f64)).collect();
            p.set_objective(&terms);
            for (coef, rhs) in &seed_cons {
                let terms: Vec<(usize, f64)> =
                    coef.iter().enumerate().map(|(i, &c)| (i, c as f64)).collect();
                p.add_constraint(&terms, Relation::Ge, *rhs as f64 * f);
            }
            p
        };
        let base = build(1.0).solve().unwrap();
        let drifted = build(scale_pct as f64 / 100.0);
        let cold = drifted.solve_canonical().unwrap();
        let warm = drifted.solve_from_basis(&base.basis).unwrap();
        prop_assert!(
            (warm.objective - cold.objective).abs() <= 1e-7 * (1.0 + cold.objective.abs()),
            "warm {} vs cold {}", warm.objective, cold.objective
        );
        if warm.basis == cold.basis {
            prop_assert_eq!(&warm.values, &cold.values);
            prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            prop_assert_eq!(&warm.duals, &cold.duals);
        }
    }

    /// On random LPs spanning every outcome class — feasible, infeasible,
    /// unbounded, and (via duplicated rows and zero right-hand sides)
    /// degenerate — the sparse revised simplex agrees with the retained
    /// dense tableau: same error kind, and on success the canonical
    /// solutions are bit-identical (the `--features audit` contract,
    /// exercised here without the feature flag).
    #[test]
    fn sparse_and_dense_agree_on_random_lps(
        num_vars in 2usize..5,
        seed_cons in proptest::collection::vec(
            (proptest::collection::vec(-3i32..4, 4), 0u8..3, -6i32..15),
            1..7,
        ),
        obj in proptest::collection::vec(-4i32..5, 4),
        duplicate_first in proptest::bool::ANY,
    ) {
        let mut p = Problem::minimize(num_vars);
        let terms: Vec<(usize, f64)> = obj
            .iter()
            .take(num_vars)
            .enumerate()
            .map(|(i, &c)| (i, c as f64))
            .collect();
        p.set_objective(&terms);
        let mut add = |coef: &[i32], rel: u8, rhs: i32| {
            let terms: Vec<(usize, f64)> = coef
                .iter()
                .take(num_vars)
                .enumerate()
                .map(|(i, &c)| (i, c as f64))
                .collect();
            let rel = match rel {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            p.add_constraint(&terms, rel, rhs as f64);
        };
        for (coef, rel, rhs) in &seed_cons {
            add(coef, *rel, *rhs);
        }
        if duplicate_first {
            // A redundant copy of the first row forces primal degeneracy.
            let (coef, rel, rhs) = &seed_cons[0];
            add(coef, *rel, *rhs);
        }
        match (p.solve(), p.solve_dense()) {
            (Ok(s), Ok(d)) => {
                prop_assert_eq!(s.objective.to_bits(), d.objective.to_bits(),
                    "objective: sparse {} vs dense {}", s.objective, d.objective);
                for (i, (sv, dv)) in s.values.iter().zip(&d.values).enumerate() {
                    prop_assert_eq!(sv.to_bits(), dv.to_bits(),
                        "value {}: sparse {} vs dense {}", i, sv, dv);
                }
            }
            (Err(se), Err(de)) => prop_assert_eq!(se, de),
            (s, d) => {
                return Err(TestCaseError::fail(format!(
                    "outcome mismatch: sparse {s:?} vs dense {d:?}"
                )));
            }
        }
    }

    /// An exported basis re-imported into `solve_from_basis` on the *same*
    /// problem reproduces the canonical solution bit for bit and re-exports
    /// the same basis — the round-trip contract PR 6's template cache and
    /// this PR's sparse rewrite both depend on.
    #[test]
    fn basis_export_import_round_trips(
        seed_cons in proptest::collection::vec(
            (proptest::collection::vec(1i32..5, 3), 2i32..20),
            1..4,
        ),
        obj in proptest::collection::vec(1i32..6, 3),
    ) {
        let num_vars = 3;
        let mut p = Problem::minimize(num_vars);
        let terms: Vec<(usize, f64)> =
            obj.iter().enumerate().map(|(i, &c)| (i, c as f64)).collect();
        p.set_objective(&terms);
        for (coef, rhs) in &seed_cons {
            let terms: Vec<(usize, f64)> =
                coef.iter().enumerate().map(|(i, &c)| (i, c as f64)).collect();
            p.add_constraint(&terms, Relation::Ge, *rhs as f64);
        }
        let cold = p.solve_canonical().unwrap();
        let warm = p.solve_from_basis(&cold.basis).unwrap();
        prop_assert!(warm.warm_started, "identical problem must accept its own basis");
        prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        prop_assert_eq!(&warm.basis, &cold.basis, "basis must survive the round trip");
        for (w, c) in warm.values.iter().zip(&cold.values) {
            prop_assert_eq!(w.to_bits(), c.to_bits());
        }
        for (w, c) in warm.duals.iter().zip(&cold.duals) {
            prop_assert_eq!(w.to_bits(), c.to_bits());
        }
    }
}
