//! Shared problem normalization, internal column layout, and canonical
//! solution refinement.
//!
//! Both solver backends — the sparse revised simplex ([`crate::revised`])
//! and the retained dense tableau oracle ([`crate::simplex`]) — run over
//! the *same* normalized system built here, use the *same*
//! `[structural | slack | artificial]` column layout, and extract their
//! final answers through the *same* canonical refinement. The refinement
//! re-derives values and duals from the original normalized data by
//! deterministic sparse LU solves (`B x_B = b'`, `Bᵀ y = c_B`), erasing the
//! floating-point history of whichever pivot sequence found the optimal
//! vertex. Two backends that reach the same vertex therefore return
//! bit-identical values and objective, which is what the `audit` feature's
//! sparse-vs-dense oracle checks.

use crate::problem::{Constraint, Relation};
use crate::sparsela::SparseLu;
use crate::types::SUPPORT_EPS;

/// Pivot threshold for refinement LU factorizations (matches the dense
/// solver's historical `lu_solve` threshold).
const LU_TOL: f64 = 1e-11;

/// One normalized constraint row in sparse form: non-negative RHS, unit
/// max magnitude, coefficient terms sorted by variable index with
/// duplicates summed and exact zeros dropped.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub terms: Vec<(u32, f64)>,
    pub rel: Relation,
    pub rhs: f64,
    pub scale: f64,
    pub flipped: bool,
}

/// What each internal column is: a structural variable, or a ±1 unit column
/// (slack, surplus or artificial) attached to one row.
#[derive(Clone, Copy)]
pub(crate) enum ColDef {
    Structural(usize),
    RowUnit { row: usize, sign: f64 },
}

/// The normalized system plus the full internal column layout, shared by
/// both solver backends.
pub(crate) struct NormSystem {
    pub rows: Vec<Row>,
    pub num_vars: usize,
    /// CSC of the structural part of the normalized matrix: for variable
    /// `j`, rows `col_rows[col_ptr[j]..col_ptr[j+1]]` (ascending) hold
    /// values `col_vals[..]`.
    pub col_ptr: Vec<usize>,
    pub col_rows: Vec<u32>,
    pub col_vals: Vec<f64>,
    /// First artificial column (phase-2 entering bar).
    pub art_start: usize,
    /// Total internal columns (structural + slack + artificial).
    pub total_cols: usize,
    /// Definition of every internal column.
    pub col_defs: Vec<ColDef>,
    /// For each constraint: the auxiliary column whose final reduced cost
    /// yields its dual, and the sign relating that reduced cost to y.
    pub dual_col: Vec<usize>,
    pub dual_sign: Vec<f64>,
    /// Initial basic column of each row (slack for `≤`, artificial
    /// otherwise).
    pub init_basis: Vec<usize>,
}

impl NormSystem {
    /// Normalizes `constraints` (sparse accumulation, negative-RHS flip,
    /// unit max-magnitude rescale — arithmetic identical to the historical
    /// dense densify-and-rescale) and assembles the column layout.
    pub fn build(num_vars: usize, constraints: &[Constraint]) -> Self {
        let m = constraints.len();
        let mut rows: Vec<Row> = Vec::with_capacity(m);
        let mut acc: Vec<(u32, f64)> = Vec::new();
        for c in constraints {
            // Sum duplicate indices in encounter order (stable sort), then
            // drop exact zeros.
            acc.clear();
            acc.extend(c.terms.iter().map(|&(i, v)| (i as u32, v)));
            acc.sort_by_key(|&(i, _)| i);
            let mut terms: Vec<(u32, f64)> = Vec::with_capacity(acc.len());
            for &(i, v) in &*acc {
                match terms.last_mut() {
                    Some(last) if last.0 == i => last.1 += v,
                    _ => terms.push((i, v)),
                }
            }
            terms.retain(|&(_, v)| v != 0.0);
            let mut rel = c.relation;
            let mut rhs = c.rhs;
            let mut flipped = false;
            if rhs < 0.0 {
                for t in &mut terms {
                    t.1 = -t.1;
                }
                rhs = -rhs;
                flipped = true;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            let scale = terms
                .iter()
                .map(|&(_, v)| v.abs())
                .fold(rhs.abs(), f64::max)
                .max(1e-300);
            for t in &mut terms {
                t.1 /= scale;
            }
            rhs /= scale;
            rows.push(Row {
                terms,
                rel,
                rhs,
                scale,
                flipped,
            });
        }

        // Transpose the row terms into CSC over structural columns.
        let mut col_ptr = vec![0usize; num_vars + 1];
        for row in &rows {
            for &(j, _) in &row.terms {
                col_ptr[j as usize + 1] += 1;
            }
        }
        for j in 0..num_vars {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[num_vars];
        let mut col_rows = vec![0u32; nnz];
        let mut col_vals = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (r, row) in rows.iter().enumerate() {
            for &(j, v) in &row.terms {
                let p = cursor[j as usize];
                col_rows[p] = r as u32;
                col_vals[p] = v;
                cursor[j as usize] = p + 1;
            }
        }

        // Column layout: structural, then one slack/surplus per inequality
        // in row order, then one artificial per `≥`/`=` row in row order —
        // identical to the historical dense tableau layout.
        let num_slack = rows
            .iter()
            .filter(|r| !matches!(r.rel, Relation::Eq))
            .count();
        let num_art = rows
            .iter()
            .filter(|r| matches!(r.rel, Relation::Ge | Relation::Eq))
            .count();
        let art_start = num_vars + num_slack;
        let total_cols = art_start + num_art;
        let mut col_defs: Vec<ColDef> = (0..num_vars).map(ColDef::Structural).collect();
        col_defs.resize(total_cols, ColDef::Structural(usize::MAX));
        let mut dual_col = vec![0usize; m];
        let mut dual_sign = vec![0.0f64; m];
        let mut init_basis = vec![0usize; m];
        let mut next_slack = num_vars;
        let mut next_art = art_start;
        for (r, row) in rows.iter().enumerate() {
            match row.rel {
                Relation::Le => {
                    init_basis[r] = next_slack;
                    // Reduced cost of a +1 slack is -y.
                    dual_col[r] = next_slack;
                    dual_sign[r] = -1.0;
                    col_defs[next_slack] = ColDef::RowUnit { row: r, sign: 1.0 };
                    next_slack += 1;
                }
                Relation::Ge => {
                    // Reduced cost of a -1 surplus is +y.
                    dual_col[r] = next_slack;
                    dual_sign[r] = 1.0;
                    col_defs[next_slack] = ColDef::RowUnit { row: r, sign: -1.0 };
                    next_slack += 1;
                    init_basis[r] = next_art;
                    col_defs[next_art] = ColDef::RowUnit { row: r, sign: 1.0 };
                    next_art += 1;
                }
                Relation::Eq => {
                    init_basis[r] = next_art;
                    // Equalities have no slack; the +1 artificial's phase-2
                    // reduced cost is -y (its own cost is zero).
                    dual_col[r] = next_art;
                    dual_sign[r] = -1.0;
                    col_defs[next_art] = ColDef::RowUnit { row: r, sign: 1.0 };
                    next_art += 1;
                }
            }
        }

        NormSystem {
            rows,
            num_vars,
            col_ptr,
            col_rows,
            col_vals,
            art_start,
            total_cols,
            col_defs,
            dual_col,
            dual_sign,
            init_basis,
        }
    }

    /// Number of constraint rows.
    pub fn m(&self) -> usize {
        self.rows.len()
    }

    /// Calls `f(row, value)` for every nonzero of internal column `c`.
    pub fn for_col<F: FnMut(usize, f64)>(&self, c: usize, mut f: F) {
        match self.col_defs[c] {
            ColDef::Structural(j) => {
                for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                    f(self.col_rows[p] as usize, self.col_vals[p]);
                }
            }
            ColDef::RowUnit { row, sign } => f(row, sign),
        }
    }

    /// Relation signature over the pre-flip (user-facing) relations —
    /// identical to [`crate::types::relation_sig`] over the originating
    /// constraint list.
    pub fn rows_sig(&self) -> u64 {
        let mut sig: u64 = 0xcbf29ce484222325;
        for row in &self.rows {
            let rel = if row.flipped {
                match row.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                row.rel
            };
            let code = match rel {
                Relation::Le => 1u64,
                Relation::Ge => 2,
                Relation::Eq => 3,
            };
            sig = sig.wrapping_mul(0x100000001b3).wrapping_add(code);
        }
        sig
    }
}

/// Factorizes the basis matrix `B` given by `basis_cols` against the
/// normalized system. `None` when (numerically) singular.
fn factorize_basis(sys: &NormSystem, basis_cols: &[usize]) -> Option<SparseLu> {
    let m = sys.m();
    SparseLu::factorize(
        m,
        |k, out| {
            sys.for_col(basis_cols[k], |r, v| out.push((r as u32, v)));
        },
        LU_TOL,
    )
}

/// Right-hand side of the basic system with the at-upper variables moved to
/// their bounds: `b'_r = b_r − Σ_{j ∈ at_upper} A_{r,j} · ub_j`, accumulated
/// over `at_upper` in ascending order (deterministic).
pub(crate) fn bounded_rhs(sys: &NormSystem, upper: &[f64], at_upper: &[usize]) -> Vec<f64> {
    let mut b: Vec<f64> = sys.rows.iter().map(|r| r.rhs).collect();
    for &j in at_upper {
        let ub = upper[j];
        for p in sys.col_ptr[j]..sys.col_ptr[j + 1] {
            b[sys.col_rows[p] as usize] -= sys.col_vals[p] * ub;
        }
    }
    b
}

/// Solves `B x_B = b'` and `Bᵀ y = c_B` for the given basis columns against
/// the normalized system via two deterministic sparse LU solves. Returns the
/// per-basis-position values and the dual vector in normalized-row space,
/// or `None` when the basis matrix is numerically singular.
pub(crate) fn basis_systems(
    sys: &NormSystem,
    objective: &[f64],
    upper: &[f64],
    at_upper: &[usize],
    basis_cols: &[usize],
) -> Option<(Vec<f64>, Vec<f64>)> {
    let m = sys.m();
    if basis_cols.len() != m {
        return None;
    }
    let lu = factorize_basis(sys, basis_cols)?;
    let b = bounded_rhs(sys, upper, at_upper);
    let xb = lu.solve(&b);
    // Basis costs under the (minimization-sense) structural objective.
    let cb: Vec<f64> = basis_cols
        .iter()
        .map(|&c| match sys.col_defs[c] {
            ColDef::Structural(j) if j < sys.num_vars => objective[j],
            _ => 0.0,
        })
        .collect();
    let y = lu.solve_transpose(&cb);
    Some((xb, y))
}

/// Maps raw basis-system solutions into user-facing `(values, duals,
/// objective)`: structural values with a tolerant feasibility check, duals
/// rescaled and un-flipped back to the original constraint orientation.
pub(crate) fn package_solution(
    sys: &NormSystem,
    objective: &[f64],
    upper: &[f64],
    at_upper: &[usize],
    basis_cols: &[usize],
    xb: &[f64],
    y: &[f64],
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let mut values = vec![0.0; sys.num_vars];
    for &j in at_upper {
        values[j] = upper[j];
    }
    for (k, &c) in basis_cols.iter().enumerate() {
        if let ColDef::Structural(j) = sys.col_defs[c] {
            if j < sys.num_vars {
                if xb[k] < -1e-6 || xb[k] > upper[j] + 1e-6 {
                    return None; // Refined vertex drifted infeasible.
                }
                values[j] = xb[k].max(0.0).min(upper[j]);
            }
        }
    }
    let objective_value = values
        .iter()
        .zip(objective)
        .map(|(x, c)| x * c)
        .sum::<f64>();
    let duals = sys
        .rows
        .iter()
        .zip(y)
        .map(|(row, &yr)| {
            let v = yr / row.scale;
            if row.flipped {
                -v
            } else {
                v
            }
        })
        .collect();
    Some((values, duals, objective_value))
}

/// Canonical refinement: re-derives solution values and duals for a known
/// terminal basis directly from the normalized constraint data. At a
/// primal-degenerate optimal vertex several bases represent the same point,
/// and two pivot paths (warm vs cold, sparse vs dense) can legitimately
/// terminate at different ones; refining from different basis matrices then
/// disagrees in the last ulps. To make the reported *values* a function of
/// the vertex rather than of the pivot path, the terminal basis is replaced
/// before the value solve by a canonical one: the vertex's support columns
/// (basic at a nonzero value, hence basic in *every* basis of this vertex)
/// completed to rank `m` by scanning the non-artificial columns in fixed
/// index order — a pure function of the support set. Any nonsingular
/// completion yields the same basic solution (the completion columns sit at
/// zero in it), so values and objective come out bit-identical for every
/// pivot path that reaches this vertex.
///
/// Duals are deliberately *not* taken from the canonical basis — a
/// completion chosen without regard to reduced costs need not be
/// dual-feasible. They are refined from the terminal basis instead, which
/// keeps them valid shadow prices; at a dual-degenerate optimum two pivot
/// paths may then report different (equally valid) dual vectors, which is
/// why the audit oracles compare values and objectives, not duals.
pub(crate) fn refine_canonical(
    sys: &NormSystem,
    objective: &[f64],
    upper: &[f64],
    at_upper: &[usize],
    terminal_cols: &[usize],
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let m = sys.m();
    let (xb, y) = basis_systems(sys, objective, upper, at_upper, terminal_cols)?;
    // Vertex support: basic columns at a tolerantly nonzero value.
    // `terminal_cols` is sorted, so the support inherits that order.
    let support: Vec<usize> = terminal_cols
        .iter()
        .zip(&xb)
        .filter(|&(_, &x)| x.abs() > SUPPORT_EPS)
        .map(|(&c, _)| c)
        .collect();
    if support.len() == m {
        // Non-degenerate vertex: its basis is unique, nothing to replace.
        return package_solution(sys, objective, upper, at_upper, terminal_cols, &xb, &y);
    }
    let canon = complete_basis(sys, upper, at_upper, &support)?;
    let (cxb, _) = basis_systems(sys, objective, upper, at_upper, &canon)?;
    // Values from the canonical basis, duals from the terminal one.
    package_solution(sys, objective, upper, at_upper, &canon, &cxb, &y)
}

/// Plain terminal-basis refinement (no canonicalization), used as the
/// fallback when [`refine_canonical`] cannot complete a basis.
pub(crate) fn refine_from_basis(
    sys: &NormSystem,
    objective: &[f64],
    upper: &[f64],
    at_upper: &[usize],
    basis_cols: &[usize],
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let (xb, y) = basis_systems(sys, objective, upper, at_upper, basis_cols)?;
    package_solution(sys, objective, upper, at_upper, basis_cols, &xb, &y)
}

/// Completes the vertex support to a full basis by greedy sparse Gaussian
/// elimination over the non-artificial columns in ascending index order,
/// skipping columns that cannot sit basic at this vertex (pinned to zero or
/// nonbasic at their upper bound). A pure function of the normalized system
/// and the vertex descriptor — independent of which terminal basis the
/// pivot path reached. Returns `None` if rank `m` is not reached (the
/// caller then falls back to plain terminal-basis refinement).
pub(crate) fn complete_basis(
    sys: &NormSystem,
    upper: &[f64],
    at_upper: &[usize],
    support: &[usize],
) -> Option<Vec<usize>> {
    let m = sys.m();
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    // Eliminated copies of the chosen columns (sparse) and their pivots.
    let mut reduced: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
    let mut pivot_rows: Vec<usize> = Vec::with_capacity(m);
    let mut pivot_vals: Vec<f64> = Vec::with_capacity(m);
    let mut row_used = vec![false; m];
    let mut scratch = vec![0.0f64; m];
    let mut touched: Vec<u32> = Vec::new();

    let mut add_column = |c: usize,
                          chosen: &mut Vec<usize>,
                          reduced: &mut Vec<Vec<(u32, f64)>>,
                          pivot_rows: &mut Vec<usize>,
                          pivot_vals: &mut Vec<f64>,
                          row_used: &mut [bool]|
     -> bool {
        for &t in &*touched {
            scratch[t as usize] = 0.0;
        }
        touched.clear();
        sys.for_col(c, |r, v| {
            if scratch[r] == 0.0 && v != 0.0 {
                touched.push(r as u32);
            }
            scratch[r] += v;
        });
        for ((col, &p), &pv) in reduced.iter().zip(pivot_rows.iter()).zip(pivot_vals.iter()) {
            let f = scratch[p] / pv;
            if f != 0.0 {
                for &(r, vr) in col {
                    if scratch[r as usize] == 0.0 {
                        touched.push(r);
                    }
                    scratch[r as usize] -= f * vr;
                }
            }
        }
        // Pivot: max magnitude over unused rows, ties to the smallest index.
        let mut best: Option<usize> = None;
        let mut best_mag = 1e-7;
        for &t in &*touched {
            let r = t as usize;
            let mag = scratch[r].abs();
            if !row_used[r] && (mag > best_mag || (mag == best_mag && best.is_some_and(|b| r < b)))
            {
                best_mag = mag;
                best = Some(r);
            }
        }
        let Some(p) = best else { return false };
        row_used[p] = true;
        chosen.push(c);
        // `touched` can hold duplicates (a row that cancels to exactly 0.0
        // mid-elimination is re-pushed when a later step revives it); the
        // stored column must carry each row once or later eliminations
        // would subtract it twice.
        let mut col: Vec<(u32, f64)> = touched
            .iter()
            .map(|&t| (t, scratch[t as usize]))
            .filter(|&(_, v)| v != 0.0)
            .collect();
        col.sort_by_key(|&(r, _)| r);
        col.dedup_by_key(|&mut (r, _)| r);
        reduced.push(col);
        pivot_rows.push(p);
        pivot_vals.push(scratch[p]);
        true
    };

    for &c in support {
        // The support of a vertex is linearly independent; a failure here
        // means the "vertex" was numerically degenerate beyond repair.
        if !add_column(
            c,
            &mut chosen,
            &mut reduced,
            &mut pivot_rows,
            &mut pivot_vals,
            &mut row_used,
        ) {
            return None;
        }
    }
    let mut at_upper_iter = at_upper.iter().copied().peekable();
    for c in 0..sys.art_start {
        if chosen.len() == m {
            break;
        }
        if support.binary_search(&c).is_ok() {
            continue;
        }
        // Columns that cannot be basic at this vertex: pinned to zero, or
        // parked at a positive upper bound.
        if let ColDef::Structural(j) = sys.col_defs[c] {
            if upper[j] == 0.0 {
                continue;
            }
            while at_upper_iter.peek().is_some_and(|&u| u < j) {
                at_upper_iter.next();
            }
            if at_upper_iter.peek() == Some(&j) {
                continue;
            }
        }
        add_column(
            c,
            &mut chosen,
            &mut reduced,
            &mut pivot_rows,
            &mut pivot_vals,
            &mut row_used,
        );
    }
    // Redundant rows leave the non-artificial columns short of rank `m`;
    // fall back to artificial columns (basic at zero, like the terminal
    // basis keeps them) so the completion is still a pure function of the
    // support.
    for c in sys.art_start..sys.total_cols {
        if chosen.len() == m {
            break;
        }
        add_column(
            c,
            &mut chosen,
            &mut reduced,
            &mut pivot_rows,
            &mut pivot_vals,
            &mut row_used,
        );
    }
    if chosen.len() != m {
        return None;
    }
    chosen.sort_unstable();
    Some(chosen)
}
