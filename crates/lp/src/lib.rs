//! Linear-program solver for Tetrium's placement models.
//!
//! Tetrium's task-placement models (map-stage, reduce-stage, WAN-budget
//! variants) are linear programs — on the order of `sites × dest_limit`
//! variables per stage. The original system calls out to Gurobi; this crate
//! is the from-scratch substitute. The default backend is a **sparse
//! revised simplex** ([`revised`]): CSC-stored constraints, an LU +
//! product-form basis inverse with periodic refactorization, and native
//! bounded-variable handling so box constraints (including `ub = 0` pins)
//! never materialize as rows. The original dense tableau survives as an
//! independent audit oracle ([`Problem::solve_dense`], checked automatically
//! under `--features audit`).
//!
//! The solver supports:
//!
//! - minimization and maximization objectives,
//! - `≤`, `≥` and `=` constraints with arbitrary-sign right-hand sides,
//! - non-negative decision variables with optional upper bounds
//!   ([`Problem::set_upper`]),
//! - infeasibility and unboundedness detection,
//! - Bland's anti-cycling rule (engaged after a Dantzig warm-up) so
//!   degenerate placement instances cannot loop forever,
//! - basis export and warm-started re-solves ([`Problem::solve_from_basis`])
//!   with canonical extraction, so a warm solve of drifted data returns
//!   bit-identical answers to a cold solve reaching the same vertex.
//!
//! # Examples
//!
//! ```
//! use tetrium_lp::{Problem, Relation};
//!
//! // Minimize x + 2y subject to x + y >= 4, y <= 3, x, y >= 0.
//! let mut p = Problem::minimize(2);
//! p.set_objective(&[(0, 1.0), (1, 2.0)]);
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
//! p.set_upper(1, 3.0); // y <= 3 as a native bound, not a row.
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 4.0).abs() < 1e-9);
//! assert!((sol.values[0] - 4.0).abs() < 1e-9);
//! ```

mod norm;
mod problem;
mod revised;
mod simplex;
mod sparsela;
mod types;

pub use problem::{Constraint, Problem, Relation, Sense};
pub use types::{Basis, LpError, Solution};

#[cfg(test)]
mod tests;
