//! Dense two-phase primal simplex solver for linear programs.
//!
//! Tetrium's task-placement models (map-stage, reduce-stage, WAN-budget
//! variants) are small linear programs — on the order of `n^2` variables for
//! `n` sites, with `n ≤ 50` in every configuration the paper evaluates. The
//! original system calls out to Gurobi; this crate is the from-scratch
//! substitute. Since the models are exact LPs, any exact solver produces the
//! same optima, so a dense tableau simplex preserves all scheduling behaviour
//! while keeping the workspace dependency-free.
//!
//! The solver supports:
//!
//! - minimization and maximization objectives,
//! - `≤`, `≥` and `=` constraints with arbitrary-sign right-hand sides,
//! - non-negative decision variables (the only kind Tetrium's models need),
//! - infeasibility and unboundedness detection,
//! - Bland's anti-cycling rule (engaged after a Dantzig warm-up) so degenerate
//!   placement instances cannot loop forever.
//!
//! # Examples
//!
//! ```
//! use tetrium_lp::{Problem, Relation};
//!
//! // Minimize x + 2y subject to x + y >= 4, y <= 3, x, y >= 0.
//! let mut p = Problem::minimize(2);
//! p.set_objective(&[(0, 1.0), (1, 2.0)]);
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
//! p.add_constraint(&[(1, 1.0)], Relation::Le, 3.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 4.0).abs() < 1e-9);
//! assert!((sol.values[0] - 4.0).abs() < 1e-9);
//! ```

mod problem;
mod simplex;

pub use problem::{Constraint, Problem, Relation, Sense};
pub use simplex::{Basis, LpError, Solution};

#[cfg(test)]
mod tests;
