//! Two-phase primal simplex over a dense tableau.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic feasible
//! solution (detecting infeasibility); phase 2 minimizes the user objective
//! from that basis (detecting unboundedness). Entering-variable selection is
//! Dantzig's rule for a warm-up period, then Bland's rule, which guarantees
//! termination on degenerate instances.

use crate::problem::{Constraint, Relation};

/// Absolute tolerance used for all feasibility and pivoting comparisons.
///
/// Rows are rescaled to unit max-magnitude before solving, so an absolute
/// tolerance behaves like a relative one.
const EPS: f64 = 1e-9;

/// Errors reported by the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The pivot-iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution to a linear program.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value of each decision variable (non-negative).
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the problem's original sense).
    pub objective: f64,
    /// Shadow price of each constraint, in input order: the marginal change
    /// of the optimal objective per unit increase of that constraint's
    /// right-hand side (in the problem's original sense). Zero for
    /// non-binding constraints; one valid assignment when duals are
    /// degenerate. In the placement models these read as "seconds saved per
    /// extra GB/s on this link / per extra slot at this site".
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub pivots: usize,
}

/// Dense simplex tableau: `rows` constraint rows of `cols` entries each
/// (the last entry of a row is the right-hand side), plus a reduced-cost row.
struct Tableau {
    rows: usize,
    /// Number of structural columns (variables), excluding the RHS column.
    vars: usize,
    /// Row-major data; each row has `vars + 1` entries.
    a: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Reduced costs per variable plus the (negated) objective value.
    cost: Vec<f64>,
    pivots: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.vars + 1) + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.vars)
    }

    /// Rebuilds the reduced-cost row for cost vector `c` (length `vars`)
    /// given the current basis: `cost[j] = c_j - c_B^T B^{-1} A_j`.
    #[allow(clippy::needless_range_loop)]
    fn price(&mut self, c: &[f64]) {
        let w = self.vars + 1;
        let mut row = vec![0.0; w];
        row[..self.vars].copy_from_slice(c);
        for r in 0..self.rows {
            let cb = c[self.basis[r]];
            if cb != 0.0 {
                let base = r * w;
                for j in 0..w {
                    row[j] -= cb * self.a[base + j];
                }
            }
        }
        self.cost = row;
    }

    /// Performs one pivot on `(row, col)`, updating constraint rows, the
    /// reduced-cost row and the basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.vars + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > EPS, "pivot on near-zero element");
        let base = row * w;
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[base + j] *= inv;
        }
        // Re-normalize the pivot entry exactly to avoid drift.
        self.a[base + col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f.abs() > 0.0 {
                let rb = r * w;
                for j in 0..w {
                    self.a[rb + j] -= f * self.a[base + j];
                }
                self.a[rb + col] = 0.0;
            }
        }
        let f = self.cost[col];
        if f.abs() > 0.0 {
            for j in 0..w {
                self.cost[j] -= f * self.a[base + j];
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Runs simplex iterations to optimality for the current cost row.
    ///
    /// `allowed` limits the columns that may enter the basis (used to bar
    /// artificial variables in phase 2).
    fn optimize(&mut self, allowed: usize) -> Result<(), LpError> {
        let limit = 200 * (self.rows + self.vars) + 1000;
        let dantzig_until = 20 * (self.rows + self.vars) + 200;
        for iter in 0..limit {
            let col = if iter < dantzig_until {
                // Dantzig: most negative reduced cost.
                let mut best = None;
                let mut best_v = -EPS;
                for j in 0..allowed {
                    if self.cost[j] < best_v {
                        best_v = self.cost[j];
                        best = Some(j);
                    }
                }
                best
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..allowed).find(|&j| self.cost[j] < -EPS)
            };
            let Some(col) = col else {
                return Ok(());
            };
            // Ratio test: smallest rhs/a over rows with positive a; ties are
            // broken toward the smallest basis index (Bland-compatible).
            let mut pivot_row = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, col);
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pivot_row.is_some_and(|pr: usize| self.basis[r] < self.basis[pr]));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            let Some(row) = pivot_row else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves `min c^T x` subject to `constraints` and `x >= 0`.
///
/// This is the internal entry point used by [`crate::Problem::solve`]; the
/// cost vector must already be in minimization sense.
pub(crate) fn solve_standard(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
) -> Result<Solution, LpError> {
    let m = constraints.len();

    // Densify each constraint, normalize to non-negative RHS and rescale the
    // row to unit max magnitude so the absolute EPS behaves relatively.
    struct Row {
        coef: Vec<f64>,
        rel: Relation,
        rhs: f64,
        scale: f64,
        flipped: bool,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(m);
    for c in constraints {
        let mut coef = vec![0.0; num_vars];
        for &(i, v) in &c.terms {
            coef[i] += v;
        }
        let mut rel = c.relation;
        let mut rhs = c.rhs;
        let mut flipped = false;
        if rhs < 0.0 {
            for v in &mut coef {
                *v = -*v;
            }
            rhs = -rhs;
            flipped = true;
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        let scale = coef
            .iter()
            .map(|v| v.abs())
            .fold(rhs.abs(), f64::max)
            .max(1e-300);
        if scale > 0.0 {
            for v in &mut coef {
                *v /= scale;
            }
            rhs /= scale;
        }
        rows.push(Row {
            coef,
            rel,
            rhs,
            scale,
            flipped,
        });
    }

    // Column layout: [structural | slacks/surplus | artificials | RHS].
    let num_slack = rows
        .iter()
        .filter(|r| !matches!(r.rel, Relation::Eq))
        .count();
    let num_art = rows
        .iter()
        .filter(|r| matches!(r.rel, Relation::Ge | Relation::Eq))
        .count();
    let vars = num_vars + num_slack + num_art;
    let w = vars + 1;

    let mut a = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    let mut next_slack = num_vars;
    let mut next_art = num_vars + num_slack;
    let art_start = num_vars + num_slack;
    // For each constraint: the auxiliary column whose final reduced cost
    // yields its dual, and the sign relating that reduced cost to y.
    let mut dual_col = vec![0usize; m];
    let mut dual_sign = vec![0.0f64; m];
    for (r, row) in rows.iter().enumerate() {
        let base = r * w;
        a[base..base + num_vars].copy_from_slice(&row.coef);
        a[base + vars] = row.rhs;
        match row.rel {
            Relation::Le => {
                a[base + next_slack] = 1.0;
                basis[r] = next_slack;
                // Reduced cost of a +1 slack is -y.
                dual_col[r] = next_slack;
                dual_sign[r] = -1.0;
                next_slack += 1;
            }
            Relation::Ge => {
                a[base + next_slack] = -1.0;
                // Reduced cost of a -1 surplus is +y.
                dual_col[r] = next_slack;
                dual_sign[r] = 1.0;
                next_slack += 1;
                a[base + next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                a[base + next_art] = 1.0;
                basis[r] = next_art;
                // Equalities have no slack; the +1 artificial's phase-2
                // reduced cost is -y (its own cost is zero).
                dual_col[r] = next_art;
                dual_sign[r] = -1.0;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        rows: m,
        vars,
        a,
        basis,
        cost: vec![],
        pivots: 0,
    };

    // Phase 1: minimize the sum of artificials.
    if num_art > 0 {
        let mut c1 = vec![0.0; vars];
        for c in c1.iter_mut().take(vars).skip(art_start) {
            *c = 1.0;
        }
        t.price(&c1);
        t.optimize(vars)?;
        // The phase-1 objective value is -cost[vars].
        let v1 = -t.cost[vars];
        if v1 > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis; drop redundant
        // rows where no structural pivot exists.
        let mut r = 0;
        while r < t.rows {
            if t.basis[r] >= art_start {
                let mut pivot_col = None;
                for j in 0..art_start {
                    if t.at(r, j).abs() > 1e-7 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    t.pivot(r, j);
                } else {
                    // Redundant constraint: remove the row entirely.
                    let w = t.vars + 1;
                    let start = r * w;
                    t.a.drain(start..start + w);
                    t.basis.remove(r);
                    t.rows -= 1;
                    continue;
                }
            }
            r += 1;
        }
    }

    // Phase 2: minimize the real objective, barring artificial columns.
    let mut c2 = vec![0.0; vars];
    c2[..num_vars].copy_from_slice(objective);
    t.price(&c2);
    t.optimize(art_start)?;

    let mut values = vec![0.0; num_vars];
    for r in 0..t.rows {
        let b = t.basis[r];
        if b < num_vars {
            values[b] = t.rhs(r).max(0.0);
        }
    }
    let objective_value = values
        .iter()
        .zip(objective)
        .map(|(x, c)| x * c)
        .sum::<f64>();
    // Duals from the final reduced costs of the auxiliary columns; undo the
    // per-row rescaling and the sign flip of negative-RHS normalization.
    let duals = (0..m)
        .map(|r| {
            let y_scaled = dual_sign[r] * t.cost[dual_col[r]];
            let y = y_scaled / rows[r].scale;
            if rows[r].flipped {
                -y
            } else {
                y
            }
        })
        .collect();
    Ok(Solution {
        values,
        objective: objective_value,
        duals,
        pivots: t.pivots,
    })
}
