//! Two-phase primal simplex over a dense tableau, with basis export and
//! warm-started re-solves.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic feasible
//! solution (detecting infeasibility); phase 2 minimizes the user objective
//! from that basis (detecting unboundedness). Entering-variable selection is
//! Dantzig's rule for a warm-up period, then Bland's rule, which guarantees
//! termination on degenerate instances.
//!
//! Every solve exports its optimal [`Basis`] (the set of basic columns in
//! the internal `[structural | slack | artificial]` layout). A later solve
//! of a *structurally identical* problem — same variable count, same
//! constraint count and relation sequence, only coefficients/RHS drifted —
//! can pass that basis to [`solve_from_basis`]: the solver pivots the fresh
//! tableau into the stored basis (Gauss–Jordan with partial pivoting), and
//! when the basis is still primal-feasible for the new data it skips phase 1
//! entirely and re-optimizes phase 2 from there (dual information carries
//! over through the priced cost row). Any incompatibility — wrong shape, a
//! singular basis matrix, infeasible RHS — falls back to the cold two-phase
//! path, so warm starting never changes *whether* a problem solves.
//!
//! A plain [`crate::Problem::solve`] reports values and duals straight from
//! the terminal tableau, exactly as it always has. Warm-started solves and
//! [`crate::Problem::solve_canonical`] instead finish with a canonical
//! refinement: once an optimal basis is known it is first replaced by a
//! basis-independent canonical basis of the same vertex (degenerate
//! vertices admit many bases and different pivot paths legitimately reach
//! different ones), then values and duals are re-derived from the
//! *original* constraint data by one deterministic LU solve (`B x_B = b`,
//! `Bᵀ y = c_B`), erasing the floating-point history of whichever pivot
//! sequence found the vertex. A warm-started solve and a cold
//! `solve_canonical` of the same problem therefore return identical bits
//! whenever they reach the same optimal vertex, which is what the
//! scheduler's audit oracle checks.

use crate::problem::{Constraint, Relation};

/// Absolute tolerance used for all feasibility and pivoting comparisons.
///
/// Rows are rescaled to unit max-magnitude before solving, so an absolute
/// tolerance behaves like a relative one.
const EPS: f64 = 1e-9;

/// Tolerance for membership of the primary-optimal face during the
/// canonical-path secondary cleanup ([`Tableau::optimize_face`]): a column
/// may enter only while its primary reduced cost is within this of zero.
/// Looser than [`EPS`] so that float noise in the priced cost row cannot
/// make two pivot paths disagree about which columns lie on the face.
const FACE_EPS: f64 = 1e-7;

/// Errors reported by the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The pivot-iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal simplex basis, exportable from one solve and usable to
/// warm-start another solve of a structurally identical problem.
///
/// Opaque on purpose: the column indices refer to the solver's internal
/// `[structural | slack | artificial]` layout, which is only meaningful for
/// a problem with the same variable count and relation sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Sorted basic column indices.
    cols: Vec<usize>,
    /// Structural variable count of the originating problem.
    num_vars: usize,
    /// Signature of the constraint-relation sequence (layout determinant).
    sig: u64,
}

impl Basis {
    /// Number of basic columns (equals the surviving row count of the
    /// originating solve).
    pub fn num_basic(&self) -> usize {
        self.cols.len()
    }

    /// Whether this basis can even be *attempted* against a problem with
    /// `num_vars` variables and the given constraints (shape check only;
    /// feasibility is decided during the warm solve itself).
    pub fn compatible_with(&self, num_vars: usize, constraints: &[Constraint]) -> bool {
        self.num_vars == num_vars
            && self.cols.len() == constraints.len()
            && self.sig == relation_sig(constraints)
    }
}

/// Signature of a constraint list's relation sequence; together with the
/// variable count it fully determines the internal column layout.
fn relation_sig(constraints: &[Constraint]) -> u64 {
    let mut sig: u64 = 0xcbf29ce484222325;
    for c in constraints {
        let code = match c.relation {
            Relation::Le => 1u64,
            Relation::Ge => 2,
            Relation::Eq => 3,
        };
        sig = sig.wrapping_mul(0x100000001b3).wrapping_add(code);
    }
    sig
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value of each decision variable (non-negative).
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the problem's original sense).
    pub objective: f64,
    /// Shadow price of each constraint, in input order: the marginal change
    /// of the optimal objective per unit increase of that constraint's
    /// right-hand side (in the problem's original sense). Zero for
    /// non-binding constraints; one valid assignment when duals are
    /// degenerate. In the placement models these read as "seconds saved per
    /// extra GB/s on this link / per extra slot at this site".
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub pivots: usize,
    /// The optimal basis, for warm-starting a later structurally identical
    /// solve via [`crate::Problem::solve_from_basis`].
    pub basis: Basis,
    /// Whether this solve actually started from a supplied basis (`false`
    /// for cold solves and for warm attempts that fell back).
    pub warm_started: bool,
}

/// Dense simplex tableau: `rows` constraint rows of `cols` entries each
/// (the last entry of a row is the right-hand side), plus a reduced-cost row.
#[derive(Clone)]
struct Tableau {
    rows: usize,
    /// Number of structural columns (variables), excluding the RHS column.
    vars: usize,
    /// Row-major data; each row has `vars + 1` entries.
    a: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Reduced costs per variable plus the (negated) objective value.
    cost: Vec<f64>,
    pivots: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.vars + 1) + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.vars)
    }

    /// Rebuilds the reduced-cost row for cost vector `c` (length `vars`)
    /// given the current basis: `cost[j] = c_j - c_B^T B^{-1} A_j`.
    #[allow(clippy::needless_range_loop)]
    fn price(&mut self, c: &[f64]) {
        let w = self.vars + 1;
        let mut row = vec![0.0; w];
        row[..self.vars].copy_from_slice(c);
        for r in 0..self.rows {
            let cb = c[self.basis[r]];
            if cb != 0.0 {
                let base = r * w;
                for j in 0..w {
                    row[j] -= cb * self.a[base + j];
                }
            }
        }
        self.cost = row;
    }

    /// Performs one pivot on `(row, col)`, updating constraint rows, the
    /// reduced-cost row and the basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.vars + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > EPS, "pivot on near-zero element");
        let base = row * w;
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[base + j] *= inv;
        }
        // Re-normalize the pivot entry exactly to avoid drift.
        self.a[base + col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f.abs() > 0.0 {
                let rb = r * w;
                for j in 0..w {
                    self.a[rb + j] -= f * self.a[base + j];
                }
                self.a[rb + col] = 0.0;
            }
        }
        let f = self.cost[col];
        if f.abs() > 0.0 {
            for j in 0..w {
                self.cost[j] -= f * self.a[base + j];
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Runs simplex iterations to optimality for the current cost row.
    ///
    /// `allowed` limits the columns that may enter the basis (used to bar
    /// artificial variables in phase 2).
    fn optimize(&mut self, allowed: usize) -> Result<(), LpError> {
        let limit = 200 * (self.rows + self.vars) + 1000;
        let dantzig_until = 20 * (self.rows + self.vars) + 200;
        for iter in 0..limit {
            let col = if iter < dantzig_until {
                // Dantzig: most negative reduced cost.
                let mut best = None;
                let mut best_v = -EPS;
                for j in 0..allowed {
                    if self.cost[j] < best_v {
                        best_v = self.cost[j];
                        best = Some(j);
                    }
                }
                best
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..allowed).find(|&j| self.cost[j] < -EPS)
            };
            let Some(col) = col else {
                return Ok(());
            };
            // Ratio test: smallest rhs/a over rows with positive a; ties are
            // broken toward the smallest basis index (Bland-compatible).
            let mut pivot_row = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, col);
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pivot_row.is_some_and(|pr: usize| self.basis[r] < self.basis[pr]));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            let Some(row) = pivot_row else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }

    /// Minimizes a fixed generic secondary objective over the current
    /// primary-optimal face (lexicographic simplex): only columns whose
    /// primary reduced cost is (tolerantly) zero may enter, so the primary
    /// optimum is preserved while the secondary objective — weights
    /// `sqrt(j + 2)`, pairwise irrational so its minimizer on any face is a
    /// single vertex — selects one deterministic vertex out of the face.
    /// Two solves that reach *any* vertex of the same optimal face
    /// therefore leave this cleanup at the *same* vertex, which is what
    /// makes warm-started and cold canonical solves comparable even on
    /// problems with alternative optima. Entering is by Bland's rule
    /// (smallest index), matching the Bland-compatible leaving tie-break in
    /// the ratio test, so the cleanup cannot cycle.
    fn optimize_face(&mut self, allowed: usize) -> Result<(), LpError> {
        let w = self.vars + 1;
        let sec: Vec<f64> = (0..self.vars).map(|j| ((j + 2) as f64).sqrt()).collect();
        // Price the secondary row against the current basis.
        let mut s = vec![0.0; w];
        s[..self.vars].copy_from_slice(&sec);
        for r in 0..self.rows {
            let cb = sec[self.basis[r]];
            if cb != 0.0 {
                let base = r * w;
                for (sj, aj) in s.iter_mut().zip(&self.a[base..base + w]) {
                    *sj -= cb * aj;
                }
            }
        }
        let limit = 200 * (self.rows + self.vars) + 1000;
        for _ in 0..limit {
            let col = (0..allowed).find(|&j| self.cost[j].abs() <= FACE_EPS && s[j] < -FACE_EPS);
            let Some(col) = col else {
                return Ok(());
            };
            let mut pivot_row = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, col);
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pivot_row.is_some_and(|pr: usize| self.basis[r] < self.basis[pr]));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            // The secondary objective is non-negative on x >= 0, so it
            // cannot actually be unbounded on the face; a missing pivot row
            // means numerical trouble — report it as such.
            let Some(row) = pivot_row else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            // Keep the secondary row in lockstep with the pivot.
            let f = s[col];
            if f.abs() > 0.0 {
                let base = row * w;
                for (sj, aj) in s.iter_mut().zip(&self.a[base..base + w]) {
                    *sj -= f * aj;
                }
                s[col] = 0.0;
            }
        }
        Err(LpError::IterationLimit)
    }
}

/// One normalized constraint row: non-negative RHS, unit max magnitude.
struct Row {
    coef: Vec<f64>,
    rel: Relation,
    rhs: f64,
    scale: f64,
    flipped: bool,
}

/// Densifies each constraint, normalizes to non-negative RHS and rescales
/// the row to unit max magnitude so the absolute EPS behaves relatively.
fn normalize_rows(num_vars: usize, constraints: &[Constraint]) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::with_capacity(constraints.len());
    for c in constraints {
        let mut coef = vec![0.0; num_vars];
        for &(i, v) in &c.terms {
            coef[i] += v;
        }
        let mut rel = c.relation;
        let mut rhs = c.rhs;
        let mut flipped = false;
        if rhs < 0.0 {
            for v in &mut coef {
                *v = -*v;
            }
            rhs = -rhs;
            flipped = true;
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        let scale = coef
            .iter()
            .map(|v| v.abs())
            .fold(rhs.abs(), f64::max)
            .max(1e-300);
        if scale > 0.0 {
            for v in &mut coef {
                *v /= scale;
            }
            rhs /= scale;
        }
        rows.push(Row {
            coef,
            rel,
            rhs,
            scale,
            flipped,
        });
    }
    rows
}

/// What each internal column is: a structural variable, or a ±1 unit column
/// (slack, surplus or artificial) attached to one row.
#[derive(Clone, Copy)]
enum ColDef {
    Structural(usize),
    RowUnit { row: usize, sign: f64 },
}

/// The assembled initial tableau plus the layout metadata needed for dual
/// extraction and canonical refinement.
struct Prepared {
    t: Tableau,
    /// First artificial column (phase-2 entering bar).
    art_start: usize,
    /// For each constraint: the auxiliary column whose final reduced cost
    /// yields its dual, and the sign relating that reduced cost to y.
    dual_col: Vec<usize>,
    dual_sign: Vec<f64>,
    /// Definition of every internal column.
    col_defs: Vec<ColDef>,
}

/// Builds the initial tableau (slack/artificial basis) from normalized rows.
fn build_tableau(num_vars: usize, rows: &[Row]) -> Prepared {
    let m = rows.len();
    let num_slack = rows
        .iter()
        .filter(|r| !matches!(r.rel, Relation::Eq))
        .count();
    let num_art = rows
        .iter()
        .filter(|r| matches!(r.rel, Relation::Ge | Relation::Eq))
        .count();
    let vars = num_vars + num_slack + num_art;
    let w = vars + 1;

    let mut a = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    let mut next_slack = num_vars;
    let mut next_art = num_vars + num_slack;
    let art_start = num_vars + num_slack;
    let mut dual_col = vec![0usize; m];
    let mut dual_sign = vec![0.0f64; m];
    let mut col_defs: Vec<ColDef> = (0..num_vars).map(ColDef::Structural).collect();
    col_defs.resize(vars, ColDef::Structural(usize::MAX)); // Placeholders, filled below.
    for (r, row) in rows.iter().enumerate() {
        let base = r * w;
        a[base..base + num_vars].copy_from_slice(&row.coef);
        a[base + vars] = row.rhs;
        match row.rel {
            Relation::Le => {
                a[base + next_slack] = 1.0;
                basis[r] = next_slack;
                // Reduced cost of a +1 slack is -y.
                dual_col[r] = next_slack;
                dual_sign[r] = -1.0;
                col_defs[next_slack] = ColDef::RowUnit { row: r, sign: 1.0 };
                next_slack += 1;
            }
            Relation::Ge => {
                a[base + next_slack] = -1.0;
                // Reduced cost of a -1 surplus is +y.
                dual_col[r] = next_slack;
                dual_sign[r] = 1.0;
                col_defs[next_slack] = ColDef::RowUnit { row: r, sign: -1.0 };
                next_slack += 1;
                a[base + next_art] = 1.0;
                basis[r] = next_art;
                col_defs[next_art] = ColDef::RowUnit { row: r, sign: 1.0 };
                next_art += 1;
            }
            Relation::Eq => {
                a[base + next_art] = 1.0;
                basis[r] = next_art;
                // Equalities have no slack; the +1 artificial's phase-2
                // reduced cost is -y (its own cost is zero).
                dual_col[r] = next_art;
                dual_sign[r] = -1.0;
                col_defs[next_art] = ColDef::RowUnit { row: r, sign: 1.0 };
                next_art += 1;
            }
        }
    }

    Prepared {
        t: Tableau {
            rows: m,
            vars,
            a,
            basis,
            cost: vec![],
            pivots: 0,
        },
        art_start,
        dual_col,
        dual_sign,
        col_defs,
    }
}

/// Solves `min c^T x` subject to `constraints` and `x >= 0`.
///
/// This is the internal entry point used by [`crate::Problem::solve`]; the
/// cost vector must already be in minimization sense.
pub(crate) fn solve_standard(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
) -> Result<Solution, LpError> {
    solve_standard_impl(num_vars, objective, constraints, None, false)
}

/// Cold solve with canonical extraction: identical pivoting to
/// [`solve_standard`], but the reported values and duals are re-derived
/// from the optimal basis by the same deterministic refinement the warm
/// path uses. This is the reference a warm-started solve is compared
/// against bit for bit (the plan-cache audit oracle).
pub(crate) fn solve_canonical(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
) -> Result<Solution, LpError> {
    solve_standard_impl(num_vars, objective, constraints, None, true)
}

/// Warm-started variant of [`solve_standard`]: pivots into `basis` and skips
/// phase 1 when that basis is still primal-feasible for the (drifted)
/// constraint data, falling back to the cold two-phase path otherwise.
/// Always extracts canonically so the result is comparable bit for bit
/// with [`solve_canonical`].
pub(crate) fn solve_from_basis(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
    basis: &Basis,
) -> Result<Solution, LpError> {
    solve_standard_impl(num_vars, objective, constraints, Some(basis), true)
}

fn solve_standard_impl(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
    warm: Option<&Basis>,
    canonical: bool,
) -> Result<Solution, LpError> {
    let m = constraints.len();
    let rows = normalize_rows(num_vars, constraints);
    let prepared = build_tableau(num_vars, &rows);
    let Prepared {
        t,
        art_start,
        dual_col,
        dual_sign,
        col_defs,
    } = prepared;

    // Phase-2 cost vector (structural objective, zero elsewhere).
    let mut c2 = vec![0.0; t.vars];
    c2[..num_vars].copy_from_slice(objective);

    // Warm attempt: pivot a copy of the fresh tableau into the stored basis
    // and re-optimize from there. Artificial columns are rejected outright —
    // a basis containing one cannot represent a feasible point of the real
    // problem unless that artificial sits at zero, and the cold path below
    // handles those rare degenerate shapes correctly anyway.
    if let Some(b) = warm {
        let shape_ok = b.num_vars == num_vars
            && b.cols.len() == m
            && b.sig == relation_sig(constraints)
            && b.cols.iter().all(|&c| c < art_start);
        if shape_ok {
            if let Some(mut wt) = pivot_into_basis(&t, &b.cols) {
                wt.price(&c2);
                if wt.optimize(art_start).is_ok() && wt.optimize_face(art_start).is_ok() {
                    return Ok(extract_solution(
                        wt, num_vars, objective, &rows, &col_defs, &dual_col, &dual_sign,
                        art_start, true, true,
                    ));
                }
            }
        }
    }

    let mut t = t;
    let num_art = t.vars - art_start;

    // Phase 1: minimize the sum of artificials.
    if num_art > 0 {
        let mut c1 = vec![0.0; t.vars];
        for c in c1.iter_mut().take(t.vars).skip(art_start) {
            *c = 1.0;
        }
        t.price(&c1);
        t.optimize(t.vars)?;
        // The phase-1 objective value is -cost[vars].
        let v1 = -t.cost[t.vars];
        if v1 > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis; drop redundant
        // rows where no structural pivot exists.
        let mut r = 0;
        while r < t.rows {
            if t.basis[r] >= art_start {
                let mut pivot_col = None;
                for j in 0..art_start {
                    if t.at(r, j).abs() > 1e-7 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    t.pivot(r, j);
                } else {
                    // Redundant constraint: remove the row entirely.
                    let w = t.vars + 1;
                    let start = r * w;
                    t.a.drain(start..start + w);
                    t.basis.remove(r);
                    t.rows -= 1;
                    continue;
                }
            }
            r += 1;
        }
    }

    // Phase 2: minimize the real objective, barring artificial columns.
    t.price(&c2);
    t.optimize(art_start)?;
    if canonical {
        t.optimize_face(art_start)?;
    }

    Ok(extract_solution(
        t, num_vars, objective, &rows, &col_defs, &dual_col, &dual_sign, art_start, canonical,
        false,
    ))
}

/// Pivots a copy of the fresh tableau into the target basis via
/// Gauss–Jordan with partial pivoting. Returns `None` when the basis matrix
/// is (numerically) singular for the new data or the resulting vertex is
/// primal-infeasible — both mean phase 1 cannot be skipped.
fn pivot_into_basis(t: &Tableau, cols: &[usize]) -> Option<Tableau> {
    let mut wt = t.clone();
    wt.cost = vec![0.0; wt.vars + 1]; // Inert during basis establishment.
    let mut claimed = vec![false; wt.rows];
    for &col in cols {
        let mut best: Option<usize> = None;
        let mut best_mag = 1e-7;
        for (r, taken) in claimed.iter().enumerate() {
            if *taken {
                continue;
            }
            let mag = wt.at(r, col).abs();
            if mag > best_mag {
                best_mag = mag;
                best = Some(r);
            }
        }
        let r = best?;
        wt.pivot(r, col);
        claimed[r] = true;
    }
    // Primal feasibility of the stored basis under the new data.
    for r in 0..wt.rows {
        if wt.rhs(r) < -1e-7 {
            return None;
        }
    }
    Some(wt)
}

/// Reads the optimal solution out of a terminal tableau, then canonically
/// refines it from the original constraint data (see the module docs). The
/// refinement is skipped when phase 1 dropped redundant rows (the basis is
/// no longer square against the original system); tableau-derived values
/// are used directly in that case.
#[allow(clippy::too_many_arguments)]
fn extract_solution(
    t: Tableau,
    num_vars: usize,
    objective: &[f64],
    rows: &[Row],
    col_defs: &[ColDef],
    dual_col: &[usize],
    dual_sign: &[f64],
    art_start: usize,
    refine: bool,
    warm_started: bool,
) -> Solution {
    let m = rows.len();
    let mut basis_cols: Vec<usize> = t.basis.clone();
    basis_cols.sort_unstable();

    if refine && t.rows == m {
        let refined = refine_canonical(num_vars, objective, rows, col_defs, art_start, &basis_cols)
            .or_else(|| refine_from_basis(num_vars, objective, rows, col_defs, &basis_cols));
        if let Some((values, duals, objective_value)) = refined {
            return Solution {
                values,
                objective: objective_value,
                duals,
                pivots: t.pivots,
                basis: Basis {
                    cols: basis_cols,
                    num_vars,
                    sig: rows_sig(rows),
                },
                warm_started,
            };
        }
    }

    let mut values = vec![0.0; num_vars];
    for r in 0..t.rows {
        let b = t.basis[r];
        if b < num_vars {
            values[b] = t.rhs(r).max(0.0);
        }
    }
    let objective_value = values
        .iter()
        .zip(objective)
        .map(|(x, c)| x * c)
        .sum::<f64>();
    // Duals from the final reduced costs of the auxiliary columns; undo the
    // per-row rescaling and the sign flip of negative-RHS normalization.
    let duals = (0..m)
        .map(|r| {
            let y_scaled = dual_sign[r] * t.cost[dual_col[r]];
            let y = y_scaled / rows[r].scale;
            if rows[r].flipped {
                -y
            } else {
                y
            }
        })
        .collect();
    Solution {
        values,
        objective: objective_value,
        duals,
        pivots: t.pivots,
        basis: Basis {
            cols: basis_cols,
            num_vars,
            sig: rows_sig(rows),
        },
        warm_started,
    }
}

/// Relation signature over normalized rows — identical to
/// [`relation_sig`] over the originating constraints because normalization
/// flips relations only together with their data, and the signature must
/// match what a *fresh* constraint list would produce. Computed from the
/// pre-flip relation.
fn rows_sig(rows: &[Row]) -> u64 {
    let mut sig: u64 = 0xcbf29ce484222325;
    for row in rows {
        // Undo the negative-RHS flip to recover the user-facing relation.
        let rel = if row.flipped {
            match row.rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            }
        } else {
            row.rel
        };
        let code = match rel {
            Relation::Le => 1u64,
            Relation::Ge => 2,
            Relation::Eq => 3,
        };
        sig = sig.wrapping_mul(0x100000001b3).wrapping_add(code);
    }
    sig
}

/// The column of the normalized system for internal column `c`.
fn column_vec(rows: &[Row], col_defs: &[ColDef], c: usize) -> Vec<f64> {
    let m = rows.len();
    let mut a = vec![0.0f64; m];
    match col_defs[c] {
        ColDef::Structural(j) => {
            for (r, row) in rows.iter().enumerate() {
                a[r] = row.coef[j];
            }
        }
        ColDef::RowUnit { row, sign } => a[row] = sign,
    }
    a
}

/// Solves `B x_B = b` and `Bᵀ y = c_B` for the given basis columns against
/// the normalized system via two deterministic LU solves. Returns the
/// per-basis-position values and the dual vector in normalized-row space,
/// or `None` when the basis matrix is numerically singular.
fn basis_systems(
    num_vars: usize,
    objective: &[f64],
    rows: &[Row],
    col_defs: &[ColDef],
    basis_cols: &[usize],
) -> Option<(Vec<f64>, Vec<f64>)> {
    let m = rows.len();
    if basis_cols.len() != m {
        return None;
    }
    // Assemble B column-by-column from the normalized system.
    let mut bmat = vec![0.0f64; m * m]; // Row-major m×m.
    for (k, &c) in basis_cols.iter().enumerate() {
        match col_defs[c] {
            ColDef::Structural(j) => {
                for r in 0..m {
                    bmat[r * m + k] = rows[r].coef[j];
                }
            }
            ColDef::RowUnit { row, sign } => {
                bmat[row * m + k] = sign;
            }
        }
    }
    let rhs: Vec<f64> = rows.iter().map(|r| r.rhs).collect();
    let xb = lu_solve(&bmat, m, &rhs)?;

    // Basis costs under the (minimization-sense) structural objective.
    let cb: Vec<f64> = basis_cols
        .iter()
        .map(|&c| match col_defs[c] {
            ColDef::Structural(j) if j < num_vars => objective[j],
            _ => 0.0,
        })
        .collect();
    // Bᵀ y = c_B.
    let mut bt = vec![0.0f64; m * m];
    for r in 0..m {
        for k in 0..m {
            bt[k * m + r] = bmat[r * m + k];
        }
    }
    let y = lu_solve(&bt, m, &cb)?;
    Some((xb, y))
}

/// Maps raw basis-system solutions into user-facing `(values, duals,
/// objective)`: structural values with a tolerant feasibility check, duals
/// rescaled and un-flipped back to the original constraint orientation.
fn package_solution(
    num_vars: usize,
    objective: &[f64],
    rows: &[Row],
    col_defs: &[ColDef],
    basis_cols: &[usize],
    xb: &[f64],
    y: &[f64],
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let mut values = vec![0.0; num_vars];
    for (k, &c) in basis_cols.iter().enumerate() {
        if let ColDef::Structural(j) = col_defs[c] {
            if j < num_vars {
                if xb[k] < -1e-6 {
                    return None; // Refined vertex drifted infeasible; keep tableau values.
                }
                values[j] = xb[k].max(0.0);
            }
        }
    }
    let objective_value = values
        .iter()
        .zip(objective)
        .map(|(x, c)| x * c)
        .sum::<f64>();
    let duals = rows
        .iter()
        .zip(y)
        .map(|(row, &yr)| {
            let v = yr / row.scale;
            if row.flipped {
                -v
            } else {
                v
            }
        })
        .collect();
    Some((values, duals, objective_value))
}

/// Canonical refinement: re-derives solution values and duals for a known
/// basis directly from the normalized constraint data via two deterministic
/// LU solves (`B x_B = b` and `Bᵀ y = c_B`). Erases the pivot-path
/// floating-point history, so any two solves ending at this basis return
/// bit-identical results. Returns `None` when the basis matrix is
/// numerically singular or the refined vertex is not (tolerantly) feasible.
fn refine_from_basis(
    num_vars: usize,
    objective: &[f64],
    rows: &[Row],
    col_defs: &[ColDef],
    basis_cols: &[usize],
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let (xb, y) = basis_systems(num_vars, objective, rows, col_defs, basis_cols)?;
    package_solution(num_vars, objective, rows, col_defs, basis_cols, &xb, &y)
}

/// Basis-*independent* canonical refinement. At a primal-degenerate optimal
/// vertex, several bases represent the same point, and two simplex runs
/// (say a warm start and a cold solve) can legitimately terminate at
/// different ones; refining from different basis matrices then disagrees in
/// the last ulps. To make the reported *values* a function of the vertex
/// rather than of the pivot path, the terminal basis is replaced before the
/// value solve by a canonical one: the vertex's support columns (basic at a
/// nonzero value, hence basic in *every* basis of this vertex) completed to
/// rank `m` by scanning the non-artificial columns in fixed index order —
/// a pure function of the support set. Any nonsingular completion yields
/// the same basic solution (the completion columns sit at zero in it), so
/// values and objective come out bit-identical for every pivot path that
/// reaches this vertex.
///
/// Duals are deliberately *not* taken from the canonical basis — a
/// completion chosen without regard to reduced costs need not be
/// dual-feasible. They are refined from the terminal basis instead, which
/// keeps them valid shadow prices; at a dual-degenerate optimum two pivot
/// paths may then report different (equally valid) dual vectors, which is
/// why the audit oracle compares placements (value-derived), not duals.
fn refine_canonical(
    num_vars: usize,
    objective: &[f64],
    rows: &[Row],
    col_defs: &[ColDef],
    art_start: usize,
    terminal_cols: &[usize],
) -> Option<(Vec<f64>, Vec<f64>, f64)> {
    let m = rows.len();
    let (xb, y) = basis_systems(num_vars, objective, rows, col_defs, terminal_cols)?;
    // Vertex support: basic columns at a tolerantly nonzero value.
    // `terminal_cols` is sorted, so the support inherits that order.
    let support: Vec<usize> = terminal_cols
        .iter()
        .zip(&xb)
        .filter(|&(_, &x)| x.abs() > 1e-7)
        .map(|(&c, _)| c)
        .collect();
    if support.len() == m {
        // Non-degenerate vertex: its basis is unique, nothing to replace.
        return package_solution(num_vars, objective, rows, col_defs, terminal_cols, &xb, &y);
    }
    let canon = complete_basis(rows, col_defs, art_start, &support)?;
    let (cxb, _) = basis_systems(num_vars, objective, rows, col_defs, &canon)?;
    // Values from the canonical basis, duals from the terminal one.
    package_solution(num_vars, objective, rows, col_defs, &canon, &cxb, &y)
}

/// Completes the vertex support to a full basis by greedy Gaussian
/// elimination over the non-artificial columns in ascending index order. A
/// pure function of the normalized system and the support set — independent
/// of which terminal basis (and hence which dual vector) the pivot path
/// reached. Returns `None` if rank `m` is not reached (the caller then
/// falls back to plain terminal-basis refinement).
fn complete_basis(
    rows: &[Row],
    col_defs: &[ColDef],
    art_start: usize,
    support: &[usize],
) -> Option<Vec<usize>> {
    let m = rows.len();
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    // Eliminated copies of the chosen columns and their pivot rows.
    let mut reduced: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut pivot_rows: Vec<usize> = Vec::with_capacity(m);
    let mut row_used = vec![false; m];

    let add_column = |c: usize,
                      chosen: &mut Vec<usize>,
                      reduced: &mut Vec<Vec<f64>>,
                      pivot_rows: &mut Vec<usize>,
                      row_used: &mut Vec<bool>| {
        let mut a = column_vec(rows, col_defs, c);
        for (v, &p) in reduced.iter().zip(pivot_rows.iter()) {
            let f = a[p] / v[p];
            if f != 0.0 {
                for (ar, vr) in a.iter_mut().zip(v) {
                    *ar -= f * vr;
                }
            }
        }
        // Pivot: max magnitude over unused rows, ties to the smallest index.
        let mut best: Option<usize> = None;
        let mut best_mag = 1e-7;
        for (r, used) in row_used.iter().enumerate() {
            if !used && a[r].abs() > best_mag {
                best_mag = a[r].abs();
                best = Some(r);
            }
        }
        let Some(p) = best else { return false };
        row_used[p] = true;
        chosen.push(c);
        reduced.push(a);
        pivot_rows.push(p);
        true
    };

    for &c in support {
        // The support of a vertex is linearly independent; a failure here
        // means the "vertex" was numerically degenerate beyond repair.
        if !add_column(c, &mut chosen, &mut reduced, &mut pivot_rows, &mut row_used) {
            return None;
        }
    }
    for c in 0..art_start {
        if chosen.len() == m {
            break;
        }
        if support.binary_search(&c).is_ok() {
            continue;
        }
        add_column(c, &mut chosen, &mut reduced, &mut pivot_rows, &mut row_used);
    }
    if chosen.len() != m {
        return None;
    }
    chosen.sort_unstable();
    Some(chosen)
}

/// Deterministic dense LU solve with partial pivoting (max magnitude, ties
/// to the smallest row index). Returns `None` on a (near-)singular matrix.
fn lu_solve(a: &[f64], n: usize, b: &[f64]) -> Option<Vec<f64>> {
    let mut lu = a.to_vec();
    let mut x = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        let mut piv = k;
        let mut piv_mag = lu[perm[k] * n + k].abs();
        for r in (k + 1)..n {
            let mag = lu[perm[r] * n + k].abs();
            if mag > piv_mag {
                piv_mag = mag;
                piv = r;
            }
        }
        if piv_mag < 1e-11 {
            return None;
        }
        perm.swap(k, piv);
        let prow = perm[k];
        let inv = 1.0 / lu[prow * n + k];
        for &row in perm.iter().skip(k + 1) {
            let f = lu[row * n + k] * inv;
            if f != 0.0 {
                lu[row * n + k] = f;
                for c in (k + 1)..n {
                    lu[row * n + c] -= f * lu[prow * n + c];
                }
            } else {
                lu[row * n + k] = 0.0;
            }
        }
    }
    // Forward substitution on the permuted rows (unit lower triangle).
    let mut fy = vec![0.0f64; n];
    for r in 0..n {
        let mut acc = x[perm[r]];
        for c in 0..r {
            acc -= lu[perm[r] * n + c] * fy[c];
        }
        fy[r] = acc;
    }
    // Back substitution (upper triangle).
    for r in (0..n).rev() {
        let mut acc = fy[r];
        for c in (r + 1)..n {
            acc -= lu[perm[r] * n + c] * x[c];
        }
        x[r] = acc / lu[perm[r] * n + r];
    }
    Some(x)
}
