//! Dense two-phase tableau simplex — retained as the audit oracle.
//!
//! The default solver backend is the sparse revised simplex in
//! [`crate::revised`]; this module keeps the original dense tableau
//! implementation as an independent cross-check. Under `--features audit`,
//! [`crate::Problem`] re-solves (size-gated) instances through this path and
//! asserts agreement with the sparse result; the test suite and the
//! `solver_time` benchmark also call it directly via
//! [`crate::Problem::solve_dense`].
//!
//! The oracle shares *data preparation* and *answer extraction* with the
//! sparse backend — both build the same [`NormSystem`] and both finish
//! through the canonical refinement in [`crate::norm`] — but shares none of
//! the pivoting machinery: this file eliminates over a dense row-major
//! tableau with explicit priced cost rows, the revised solver over an LU +
//! eta-file basis inverse. Because the shared face cleanup drives both to
//! the same canonical vertex and the shared refinement re-derives the
//! answer from the original data, the two backends return bit-identical
//! values and objectives whenever the problem's bounds are all `0`/`+∞`
//! (the only kinds the schedulers emit). Positive finite bounds are
//! materialized here as explicit `≤` rows — a *different* system from the
//! sparse backend's native bound handling — so those solves are only
//! tolerance-comparable.
//!
//! Variable bounds aside, one bounded-variable idea is used internally:
//! phase 1 no longer pivots out or drops redundant rows. Artificials are
//! instead treated as fixed to zero in phase 2 — barred from entering, and
//! the ratio test blocks on rows whose basic artificial would *grow* — so
//! the terminal basis always has full length `m` and refines through the
//! same code path as the sparse backend.

use crate::norm::{refine_canonical, refine_from_basis, ColDef, NormSystem};
use crate::problem::{Constraint, Relation};
use crate::types::{bounds_sig, Basis, LpError, Solution, EPS, FACE_EPS};

/// Dense simplex tableau: `rows` constraint rows of `cols` entries each
/// (the last entry of a row is the right-hand side), plus a reduced-cost row.
struct Tableau {
    rows: usize,
    /// Number of internal columns, excluding the RHS column.
    vars: usize,
    /// Row-major data; each row has `vars + 1` entries.
    a: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Reduced costs per variable plus the (negated) objective value.
    cost: Vec<f64>,
    pivots: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.vars + 1) + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.vars)
    }

    /// Rebuilds the reduced-cost row for cost vector `c` (length `vars`)
    /// given the current basis: `cost[j] = c_j - c_B^T B^{-1} A_j`.
    #[allow(clippy::needless_range_loop)]
    fn price(&mut self, c: &[f64]) {
        let w = self.vars + 1;
        let mut row = vec![0.0; w];
        row[..self.vars].copy_from_slice(c);
        for r in 0..self.rows {
            let cb = c[self.basis[r]];
            if cb != 0.0 {
                let base = r * w;
                for j in 0..w {
                    row[j] -= cb * self.a[base + j];
                }
            }
        }
        self.cost = row;
    }

    /// Performs one pivot on `(row, col)`, updating constraint rows, the
    /// reduced-cost row and the basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.vars + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > EPS, "pivot on near-zero element");
        let base = row * w;
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[base + j] *= inv;
        }
        // Re-normalize the pivot entry exactly to avoid drift.
        self.a[base + col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f.abs() > 0.0 {
                let rb = r * w;
                for j in 0..w {
                    self.a[rb + j] -= f * self.a[base + j];
                }
                self.a[rb + col] = 0.0;
            }
        }
        let f = self.cost[col];
        if f.abs() > 0.0 {
            for j in 0..w {
                self.cost[j] -= f * self.a[base + j];
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Ratio test: smallest `rhs/a` over rows with positive `a`; ties are
    /// broken toward the smallest basis index (Bland-compatible). When
    /// `art_fixed` is set (phase 2), rows whose basic variable is an
    /// artificial (`>= art_start`) also block on *negative* `a` at ratio
    /// ~0 — a basic artificial sits at zero and must not grow again, which
    /// is the tableau equivalent of the revised solver's `ub = 0`
    /// artificial retirement.
    fn ratio_row(&self, col: usize, art_fixed: Option<usize>) -> Option<usize> {
        let mut pivot_row = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..self.rows {
            let a = self.at(r, col);
            let ratio = if a > EPS {
                self.rhs(r) / a
            } else if a < -EPS && art_fixed.is_some_and(|ab| self.basis[r] >= ab) {
                (self.rhs(r) / a).max(0.0)
            } else {
                continue;
            };
            let better = ratio < best_ratio - EPS
                || (ratio < best_ratio + EPS
                    && pivot_row.is_some_and(|pr: usize| self.basis[r] < self.basis[pr]));
            if better {
                best_ratio = ratio;
                pivot_row = Some(r);
            }
        }
        pivot_row
    }

    /// Runs simplex iterations to optimality for the current cost row.
    /// `barred` marks columns that may never enter (artificials in phase 2,
    /// `ub = 0` pins always); `art_fixed` enables the artificial row block
    /// in the ratio test.
    fn optimize(&mut self, barred: &[bool], art_fixed: Option<usize>) -> Result<(), LpError> {
        let limit = 200 * (self.rows + self.vars) + 1000;
        let dantzig_until = 20 * (self.rows + self.vars) + 200;
        for iter in 0..limit {
            let col = if iter < dantzig_until {
                // Dantzig: most negative reduced cost.
                let mut best = None;
                let mut best_v = -EPS;
                for (j, &bar) in barred.iter().enumerate().take(self.vars) {
                    if !bar && self.cost[j] < best_v {
                        best_v = self.cost[j];
                        best = Some(j);
                    }
                }
                best
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..self.vars).find(|&j| !barred[j] && self.cost[j] < -EPS)
            };
            let Some(col) = col else {
                return Ok(());
            };
            let Some(row) = self.ratio_row(col, art_fixed) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }

    /// Minimizes a fixed generic secondary objective over the current
    /// primary-optimal face (lexicographic simplex): only columns whose
    /// primary reduced cost is (tolerantly) zero may enter, so the primary
    /// optimum is preserved while the secondary objective — weights
    /// `sqrt(j + 2)`, pairwise irrational so its minimizer on any face is a
    /// single vertex — selects one deterministic vertex out of the face.
    /// Two solves that reach *any* vertex of the same optimal face
    /// therefore leave this cleanup at the *same* vertex — including a
    /// sparse revised-simplex solve, whose face cleanup applies the same
    /// thresholds to the same secondary weights. Entering is by Bland's
    /// rule (smallest index), matching the Bland-compatible leaving
    /// tie-break in the ratio test, so the cleanup cannot cycle.
    fn optimize_face(&mut self, barred: &[bool], art_fixed: Option<usize>) -> Result<(), LpError> {
        let w = self.vars + 1;
        let sec: Vec<f64> = (0..self.vars).map(|j| ((j + 2) as f64).sqrt()).collect();
        // Price the secondary row against the current basis.
        let mut s = vec![0.0; w];
        s[..self.vars].copy_from_slice(&sec);
        for r in 0..self.rows {
            let cb = sec[self.basis[r]];
            if cb != 0.0 {
                let base = r * w;
                for (sj, aj) in s.iter_mut().zip(&self.a[base..base + w]) {
                    *sj -= cb * aj;
                }
            }
        }
        let limit = 200 * (self.rows + self.vars) + 1000;
        for _ in 0..limit {
            let col = (0..self.vars)
                .find(|&j| !barred[j] && self.cost[j].abs() <= FACE_EPS && s[j] < -FACE_EPS);
            let Some(col) = col else {
                return Ok(());
            };
            // The secondary objective is non-negative on x >= 0, so it
            // cannot actually be unbounded on the face; a missing pivot row
            // means numerical trouble — report it as such.
            let Some(row) = self.ratio_row(col, art_fixed) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            // Keep the secondary row in lockstep with the pivot.
            let f = s[col];
            if f.abs() > 0.0 {
                let base = row * w;
                for (sj, aj) in s.iter_mut().zip(&self.a[base..base + w]) {
                    *sj -= f * aj;
                }
                s[col] = 0.0;
            }
        }
        Err(LpError::IterationLimit)
    }
}

/// Builds the initial dense tableau (slack/artificial basis) from the
/// normalized system.
fn build_tableau(sys: &NormSystem) -> Tableau {
    let m = sys.m();
    let vars = sys.total_cols;
    let w = vars + 1;
    let mut a = vec![0.0; m * w];
    for (r, row) in sys.rows.iter().enumerate() {
        let base = r * w;
        for &(j, v) in &row.terms {
            a[base + j as usize] = v;
        }
        a[base + vars] = row.rhs;
    }
    for c in sys.num_vars..vars {
        if let ColDef::RowUnit { row, sign } = sys.col_defs[c] {
            a[row * w + c] = sign;
        }
    }
    Tableau {
        rows: m,
        vars,
        a,
        basis: sys.init_basis.clone(),
        cost: vec![],
        pivots: 0,
    }
}

/// Solves `min c^T x` s.t. `constraints`, `0 ≤ x ≤ upper` through the dense
/// tableau. Positive finite bounds are materialized as appended `≤` rows
/// (ascending variable order); `ub = 0` pins are enforced by barring the
/// column. The cost vector must already be in minimization sense.
pub(crate) fn solve_dense(
    num_vars: usize,
    objective: &[f64],
    constraints: &[Constraint],
    upper: &[f64],
) -> Result<Solution, LpError> {
    let user_m = constraints.len();
    let mut extended: Vec<Constraint>;
    let (constraints, upper_refine): (&[Constraint], Vec<f64>) = {
        let bounded: Vec<usize> = (0..num_vars)
            .filter(|&j| upper[j].is_finite() && upper[j] > 0.0)
            .collect();
        if bounded.is_empty() {
            (constraints, upper.to_vec())
        } else {
            extended = constraints.to_vec();
            let mut up = upper.to_vec();
            for &j in &bounded {
                extended.push(Constraint {
                    terms: vec![(j, 1.0)],
                    relation: Relation::Le,
                    rhs: upper[j],
                });
                // The bound lives in a row now; the refinement must not
                // treat the column as bounded on top of that.
                up[j] = f64::INFINITY;
            }
            (extended.as_slice(), up)
        }
    };

    let sys = NormSystem::build(num_vars, constraints);
    let mut t = build_tableau(&sys);
    let barred_p1: Vec<bool> = (0..sys.total_cols)
        .map(
            |c| matches!(sys.col_defs[c], ColDef::Structural(j) if j < num_vars && upper[j] == 0.0),
        )
        .collect();
    let barred_p2: Vec<bool> = (0..sys.total_cols)
        .map(|c| barred_p1[c] || c >= sys.art_start)
        .collect();

    // Phase 1: minimize the sum of artificials.
    if sys.total_cols > sys.art_start {
        let mut c1 = vec![0.0; sys.total_cols];
        for c in c1.iter_mut().skip(sys.art_start) {
            *c = 1.0;
        }
        t.price(&c1);
        t.optimize(&barred_p1, None)?;
        // The phase-1 objective value is -cost[vars].
        if -t.cost[t.vars] > 1e-7 {
            return Err(LpError::Infeasible);
        }
    }

    // Phase 2 + canonical face cleanup, with artificials fixed at zero.
    let mut c2 = vec![0.0; sys.total_cols];
    c2[..num_vars].copy_from_slice(objective);
    t.price(&c2);
    t.optimize(&barred_p2, Some(sys.art_start))?;
    t.optimize_face(&barred_p2, Some(sys.art_start))?;

    let mut basis_cols = t.basis.clone();
    basis_cols.sort_unstable();
    let refined = refine_canonical(&sys, objective, &upper_refine, &[], &basis_cols)
        .or_else(|| refine_from_basis(&sys, objective, &upper_refine, &[], &basis_cols));
    let (values, mut duals, objective_value) = match refined {
        Some(r) => r,
        None => {
            // Last resort: read the answer straight out of the tableau.
            let mut values = vec![0.0; num_vars];
            for r in 0..t.rows {
                let b = t.basis[r];
                if b < num_vars {
                    values[b] = t.rhs(r).max(0.0);
                }
            }
            let objective_value = values
                .iter()
                .zip(objective)
                .map(|(x, c)| x * c)
                .sum::<f64>();
            let duals = (0..sys.m())
                .map(|r| {
                    let y_scaled = sys.dual_sign[r] * t.cost[sys.dual_col[r]];
                    let y = y_scaled / sys.rows[r].scale;
                    if sys.rows[r].flipped {
                        -y
                    } else {
                        y
                    }
                })
                .collect();
            (values, duals, objective_value)
        }
    };
    duals.truncate(user_m);
    Ok(Solution {
        values,
        objective: objective_value,
        duals,
        pivots: t.pivots,
        basis: Basis {
            cols: basis_cols,
            num_vars,
            sig: sys.rows_sig(),
            bsig: bounds_sig(upper),
            upper: Vec::new(),
        },
        warm_started: false,
    })
}
