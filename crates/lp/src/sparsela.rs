//! Deterministic sparse LU factorization with forward/backward transforms.
//!
//! A small, dependency-free left-looking LU with partial pivoting, tuned for
//! the basis matrices this crate produces: mostly unit columns (slacks,
//! artificials) plus sparse structural columns. Used in two places:
//!
//! * the canonical refinement in [`crate::norm`], which solves
//!   `B x_B = b` / `Bᵀ y = c_B` once per extraction, and
//! * the revised simplex in [`crate::revised`], which reuses one
//!   factorization across many iterations through a product-form eta file
//!   and refactorizes periodically.
//!
//! Everything here is deterministic: pivot selection breaks magnitude ties
//! toward the smallest row index, per-column updates are applied in
//! ascending eliminated-column order (driven by a min-heap worklist), and
//! stored factor columns are sorted by row, so identical input columns
//! always produce bit-identical factors and solves. Both solver backends
//! lean on this for their bit-equality contract.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sparse LU factors of a square matrix `B` with row permutation:
/// `P·B = L·U` (up to the usual left-looking bookkeeping), where `L` is unit
/// lower triangular and `U` upper triangular in the pivot ordering.
pub(crate) struct SparseLu {
    m: usize,
    /// Column `k` of `L` below the diagonal: `(original_row, multiplier)`,
    /// sorted by row. The unit diagonal is implicit.
    l_cols: Vec<Vec<(u32, f64)>>,
    /// Column `k` of `U` above the diagonal: `(pivot_position j < k, value)`,
    /// sorted ascending by `j`.
    u_cols: Vec<Vec<(u32, f64)>>,
    /// Diagonal of `U` per pivot position.
    diag: Vec<f64>,
    /// Pivot position -> original row index.
    pivrow: Vec<u32>,
}

impl SparseLu {
    /// Factorizes the `m×m` matrix whose column `k` is produced by
    /// `col(k, &mut out)` as `(row, value)` pairs (any order; duplicate rows
    /// are summed). Returns `None` if a pivot of magnitude `> tol` cannot be
    /// found for some column (numerically singular).
    pub fn factorize<F: FnMut(usize, &mut Vec<(u32, f64)>)>(
        m: usize,
        mut col: F,
        tol: f64,
    ) -> Option<Self> {
        let mut l_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut diag = vec![0.0f64; m];
        let mut pivrow = vec![0u32; m];
        // Original row -> pivot position (u32::MAX while unpivoted).
        let mut pinv = vec![u32::MAX; m];

        // Dense accumulator for the current column plus touch tracking.
        let mut x = vec![0.0f64; m];
        let mut in_x = vec![false; m];
        let mut touched: Vec<u32> = Vec::new();
        let mut buf: Vec<(u32, f64)> = Vec::new();
        // Worklist of already-pivoted positions hit by this column, drained
        // in ascending order (left-looking dependency order).
        let mut pending: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut queued = vec![false; m];

        for k in 0..m {
            buf.clear();
            col(k, &mut buf);
            for &(r, v) in &buf {
                let r = r as usize;
                if !in_x[r] {
                    in_x[r] = true;
                    touched.push(r as u32);
                    x[r] = v;
                } else {
                    x[r] += v;
                }
                let p = pinv[r];
                if p != u32::MAX && !queued[p as usize] {
                    queued[p as usize] = true;
                    pending.push(Reverse(p));
                }
            }

            // Left-looking elimination: apply every earlier column whose
            // pivot row this column touches, in ascending order. Applying
            // column `j` may fill pivot rows of later columns, which are
            // pushed as discovered.
            let mut u_col: Vec<(u32, f64)> = Vec::new();
            while let Some(Reverse(j)) = pending.pop() {
                let ju = j as usize;
                queued[ju] = false;
                let pr = pivrow[ju] as usize;
                let xv = x[pr];
                if xv != 0.0 {
                    u_col.push((j, xv));
                    for &(r, lv) in &l_cols[ju] {
                        let r = r as usize;
                        if !in_x[r] {
                            in_x[r] = true;
                            touched.push(r as u32);
                            x[r] = 0.0;
                        }
                        x[r] -= xv * lv;
                        let p = pinv[r];
                        if p != u32::MAX && !queued[p as usize] {
                            queued[p as usize] = true;
                            pending.push(Reverse(p));
                        }
                    }
                }
            }

            // Partial pivot over unpivoted rows: max magnitude, ties to the
            // smallest original row index (scan-order independent).
            let mut best: Option<usize> = None;
            let mut best_mag = tol;
            for &t in &touched {
                let r = t as usize;
                if pinv[r] != u32::MAX {
                    continue;
                }
                let mag = x[r].abs();
                if mag > best_mag || (mag == best_mag && best.is_some_and(|b| r < b)) {
                    best_mag = mag;
                    best = Some(r);
                }
            }
            let p = best?;
            pivrow[k] = p as u32;
            pinv[p] = k as u32;
            diag[k] = x[p];

            let mut l_col: Vec<(u32, f64)> = touched
                .iter()
                .filter_map(|&t| {
                    let r = t as usize;
                    if pinv[r] == u32::MAX && x[r] != 0.0 {
                        Some((t, x[r] / diag[k]))
                    } else {
                        None
                    }
                })
                .collect();
            l_col.sort_unstable_by_key(|&(r, _)| r);
            l_cols.push(l_col);
            u_cols.push(u_col);

            for &t in &touched {
                x[t as usize] = 0.0;
                in_x[t as usize] = false;
            }
            touched.clear();
        }

        Some(SparseLu {
            m,
            l_cols,
            u_cols,
            diag,
            pivrow,
        })
    }

    /// Solves `B x = b` (FTRAN). `b` is in original row coordinates; the
    /// result is indexed by pivot position (= basis position for a basis
    /// factorization).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut work = b.to_vec();
        self.solve_in_place(&mut work);
        work
    }

    /// In-place FTRAN: on entry `work` holds `b` in original row
    /// coordinates; on exit it holds `x` indexed by pivot position.
    pub fn solve_in_place(&self, work: &mut [f64]) {
        debug_assert_eq!(work.len(), self.m);
        // Forward solve with L (unit diagonal), in original row coords.
        for j in 0..self.m {
            let t = work[self.pivrow[j] as usize];
            if t != 0.0 {
                for &(r, lv) in &self.l_cols[j] {
                    work[r as usize] -= t * lv;
                }
            }
        }
        // Permute to pivot positions.
        let mut y = vec![0.0f64; self.m];
        for k in 0..self.m {
            y[k] = work[self.pivrow[k] as usize];
        }
        // Back substitution with U, column sweep from the right.
        for k in (0..self.m).rev() {
            let xk = y[k] / self.diag[k];
            y[k] = xk;
            if xk != 0.0 {
                for &(j, uv) in &self.u_cols[k] {
                    y[j as usize] -= uv * xk;
                }
            }
        }
        work.copy_from_slice(&y);
    }

    /// Solves `Bᵀ y = c` (BTRAN). `c` is indexed by pivot position (= basis
    /// position); the result is in original row coordinates.
    pub fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        let mut work = c.to_vec();
        self.solve_transpose_in_place(&mut work);
        work
    }

    /// In-place BTRAN: on entry `work` holds `c` indexed by pivot position;
    /// on exit it holds `y` in original row coordinates.
    pub fn solve_transpose_in_place(&self, work: &mut [f64]) {
        debug_assert_eq!(work.len(), self.m);
        // Forward solve with Uᵀ (lower triangular in pivot order):
        // z_k = (c_k − Σ_{j<k} U[j][k]·z_j) / d_k.
        let mut z = vec![0.0f64; self.m];
        for k in 0..self.m {
            let mut acc = work[k];
            for &(j, uv) in &self.u_cols[k] {
                acc -= uv * z[j as usize];
            }
            z[k] = acc / self.diag[k];
        }
        // Backward solve with Lᵀ (unit diagonal), writing original rows:
        // w[pivrow_j] = z_j − Σ L[r][j]·w[r]. Every entry row of column j
        // is pivoted strictly later than j, so descending order is safe.
        for j in (0..self.m).rev() {
            let mut acc = z[j];
            for &(r, lv) in &self.l_cols[j] {
                acc -= lv * work[r as usize];
            }
            work[self.pivrow[j] as usize] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<Vec<(u32, f64)>> {
        let m = a.len();
        (0..m)
            .map(|j| {
                (0..m)
                    .filter_map(|i| {
                        let v = a[i][j];
                        (v != 0.0).then_some((i as u32, v))
                    })
                    .collect()
            })
            .collect()
    }

    fn check_roundtrip(a: &[&[f64]]) {
        let m = a.len();
        let cols = dense_cols(a);
        let lu = SparseLu::factorize(m, |k, out| out.extend_from_slice(&cols[k]), 1e-11)
            .expect("nonsingular");
        // B x = b.
        let b: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
        let x = lu.solve(&b);
        for (i, row) in a.iter().enumerate() {
            let got: f64 = row.iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
            assert!((got - b[i]).abs() < 1e-9, "row {i}: {got} vs {}", b[i]);
        }
        // Bᵀ y = c.
        let c: Vec<f64> = (0..m).map(|i| 0.25 * (i as f64) + 1.0).collect();
        let y = lu.solve_transpose(&c);
        for j in 0..m {
            let got: f64 = (0..m).map(|i| a[i][j] * y[i]).sum();
            assert!((got - c[j]).abs() < 1e-9, "col {j}: {got} vs {}", c[j]);
        }
    }

    #[test]
    fn identity_and_permutation() {
        check_roundtrip(&[&[1.0, 0.0], &[0.0, 1.0]]);
        check_roundtrip(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0], &[3.0, 0.0, 0.0]]);
    }

    #[test]
    fn general_sparse_system() {
        check_roundtrip(&[
            &[2.0, 1.0, 0.0, 0.0, 0.5],
            &[0.0, 3.0, 0.0, -1.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, -2.0, 4.0, 1.0],
            &[0.0, 0.5, 0.0, 0.0, 2.0],
        ]);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        check_roundtrip(&[&[0.0, 2.0], &[1.0, 1.0]]);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        let cols = dense_cols(a);
        assert!(SparseLu::factorize(2, |k, out| out.extend_from_slice(&cols[k]), 1e-11).is_none());
    }

    #[test]
    fn deterministic_factors() {
        let a: &[&[f64]] = &[
            &[2.0, 1.0, 0.0, 0.5],
            &[0.0, 3.0, -1.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 4.0, 1.0],
        ];
        let cols = dense_cols(a);
        let f = || SparseLu::factorize(4, |k, out| out.extend_from_slice(&cols[k]), 1e-11).unwrap();
        let (l1, l2) = (f(), f());
        let b = [1.0, -2.0, 3.0, 0.5];
        let x1 = l1.solve(&b);
        let x2 = l2.solve(&b);
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
