//! Problem-construction API: variables, objective, constraints.

use crate::simplex::{solve_canonical, solve_from_basis, solve_standard, Basis, LpError, Solution};

/// Direction of the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Relation between a constraint's left-hand side and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Left-hand side must be less than or equal to the right-hand side.
    Le,
    /// Left-hand side must be greater than or equal to the right-hand side.
    Ge,
    /// Left-hand side must equal the right-hand side.
    Eq,
}

/// A single linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (summed).
    pub terms: Vec<(usize, f64)>,
    /// The relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand-side constant.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are indexed `0..num_vars` and implicitly constrained to be
/// non-negative, which matches every model in Tetrium (task fractions,
/// stage durations and WAN volumes are all non-negative quantities).
#[derive(Debug, Clone)]
pub struct Problem {
    num_vars: usize,
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a minimization problem with `num_vars` non-negative variables.
    pub fn minimize(num_vars: usize) -> Self {
        Self::new(num_vars, Sense::Min)
    }

    /// Creates a maximization problem with `num_vars` non-negative variables.
    pub fn maximize(num_vars: usize) -> Self {
        Self::new(num_vars, Sense::Max)
    }

    /// Creates a problem with the given objective sense.
    pub fn new(num_vars: usize, sense: Sense) -> Self {
        Self {
            num_vars,
            sense,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficients from sparse `(index, coefficient)`
    /// pairs; unspecified coefficients stay zero, repeated indices are summed.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn set_objective(&mut self, terms: &[(usize, f64)]) {
        self.objective = vec![0.0; self.num_vars];
        for &(i, c) in terms {
            assert!(i < self.num_vars, "objective index {i} out of range");
            self.objective[i] += c;
        }
    }

    /// Adds `coefficient` to the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn add_objective_term(&mut self, var: usize, coefficient: f64) {
        assert!(var < self.num_vars, "objective index {var} out of range");
        self.objective[var] += coefficient;
    }

    /// Adds a constraint from sparse `(index, coefficient)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or any value is non-finite.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(i, c) in terms {
            assert!(i < self.num_vars, "constraint index {i} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            relation,
            rhs,
        });
    }

    /// Solves the problem, returning variable values and objective value.
    ///
    /// Returns [`LpError::Infeasible`] when no assignment satisfies all
    /// constraints and [`LpError::Unbounded`] when the objective can improve
    /// without limit.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_inner(None, false)
    }

    /// Like [`Problem::solve`], but warm-starts from the optimal basis of a
    /// previous, structurally identical solve (same variable count and
    /// relation sequence; coefficients and right-hand sides may differ).
    ///
    /// When the supplied basis is still primal-feasible for this problem's
    /// data the solver skips phase 1 and re-optimizes directly from it — a
    /// handful of pivots when the data has only drifted. Any incompatibility
    /// (shape mismatch, singular basis, infeasible vertex) silently falls
    /// back to a cold [`Problem::solve`], so the result is always the true
    /// optimum; check [`Solution::warm_started`] to see which path ran.
    pub fn solve_from_basis(&self, basis: &Basis) -> Result<Solution, LpError> {
        self.solve_inner(Some(basis), true)
    }

    /// Cold solve with canonical extraction: pivots exactly like
    /// [`Problem::solve`], but re-derives the reported values and duals
    /// from the optimal vertex by the same deterministic refinement
    /// [`Problem::solve_from_basis`] uses. This is the bit-for-bit
    /// reference a warm-started solve is audited against; a plain
    /// [`Problem::solve`] of the same problem returns the same optimum but
    /// possibly different last-ulp floating-point representations of it.
    ///
    /// # Errors
    ///
    /// Exactly as [`Problem::solve`].
    pub fn solve_canonical(&self) -> Result<Solution, LpError> {
        self.solve_inner(None, true)
    }

    fn solve_inner(&self, basis: Option<&Basis>, canonical: bool) -> Result<Solution, LpError> {
        // Normalize to a minimization problem; flip the objective back at the
        // end for maximization.
        let flip = matches!(self.sense, Sense::Max);
        let objective: Vec<f64> = if flip {
            self.objective.iter().map(|c| -c).collect()
        } else {
            self.objective.clone()
        };
        let mut sol = match (basis, canonical) {
            (Some(b), _) => solve_from_basis(self.num_vars, &objective, &self.constraints, b)?,
            (None, true) => solve_canonical(self.num_vars, &objective, &self.constraints)?,
            (None, false) => solve_standard(self.num_vars, &objective, &self.constraints)?,
        };
        if flip {
            sol.objective = -sol.objective;
            // Duals computed against the negated objective flip with it.
            for d in &mut sol.duals {
                *d = -*d;
            }
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn objective_terms_accumulate() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (0, 2.0)]);
        p.add_objective_term(1, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        p.add_constraint(&[(1, 1.0)], Relation::Ge, 1.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(3, 1.0)], Relation::Le, 1.0);
    }
}
