//! Problem-construction API: variables, objective, constraints, bounds.

use crate::revised::solve_sparse;
use crate::simplex::solve_dense;
use crate::types::{Basis, LpError, Solution};

/// Direction of the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Relation between a constraint's left-hand side and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Left-hand side must be less than or equal to the right-hand side.
    Le,
    /// Left-hand side must be greater than or equal to the right-hand side.
    Ge,
    /// Left-hand side must equal the right-hand side.
    Eq,
}

/// A single linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (summed).
    pub terms: Vec<(usize, f64)>,
    /// The relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand-side constant.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are indexed `0..num_vars` and implicitly constrained to be
/// non-negative, which matches every model in Tetrium (task fractions,
/// stage durations and WAN volumes are all non-negative quantities). A
/// variable may additionally carry an upper bound ([`Problem::set_upper`]);
/// bounds are handled natively by the solver's bounded ratio test instead
/// of materializing as constraint rows, so pinning a variable to zero or
/// boxing it costs nothing per row. The placement models use `ub = 0` pins
/// for dead sources, which previously required one explicit row per pinned
/// site.
#[derive(Debug, Clone)]
pub struct Problem {
    num_vars: usize,
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    upper: Vec<f64>,
}

impl Problem {
    /// Creates a minimization problem with `num_vars` non-negative variables.
    pub fn minimize(num_vars: usize) -> Self {
        Self::new(num_vars, Sense::Min)
    }

    /// Creates a maximization problem with `num_vars` non-negative variables.
    pub fn maximize(num_vars: usize) -> Self {
        Self::new(num_vars, Sense::Max)
    }

    /// Creates a problem with the given objective sense.
    pub fn new(num_vars: usize, sense: Sense) -> Self {
        Self {
            num_vars,
            sense,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            upper: vec![f64::INFINITY; num_vars],
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficients from sparse `(index, coefficient)`
    /// pairs; unspecified coefficients stay zero, repeated indices are summed.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn set_objective(&mut self, terms: &[(usize, f64)]) {
        self.objective = vec![0.0; self.num_vars];
        for &(i, c) in terms {
            assert!(i < self.num_vars, "objective index {i} out of range");
            self.objective[i] += c;
        }
    }

    /// Adds `coefficient` to the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn add_objective_term(&mut self, var: usize, coefficient: f64) {
        assert!(var < self.num_vars, "objective index {var} out of range");
        self.objective[var] += coefficient;
    }

    /// Sets the upper bound of variable `var` (default `+∞`). `0.0` pins the
    /// variable to zero — the sparse-friendly replacement for an explicit
    /// `x ≤ 0` constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range, or `ub` is NaN or negative.
    pub fn set_upper(&mut self, var: usize, ub: f64) {
        assert!(var < self.num_vars, "bound index {var} out of range");
        assert!(ub >= 0.0, "upper bound must be non-negative, got {ub}");
        self.upper[var] = ub;
    }

    /// The upper bound of variable `var` (`+∞` if never set).
    pub fn upper_bound(&self, var: usize) -> f64 {
        self.upper[var]
    }

    /// Adds a constraint from sparse `(index, coefficient)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or any value is non-finite.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(i, c) in terms {
            assert!(i < self.num_vars, "constraint index {i} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            relation,
            rhs,
        });
    }

    /// Solves the problem, returning variable values and objective value.
    ///
    /// Runs the sparse revised simplex ([`crate::revised`]) and extracts the
    /// answer canonically — values and duals are re-derived from the optimal
    /// vertex by a deterministic refinement, so the reported bits are a
    /// function of the problem, not of the pivot path.
    ///
    /// Returns [`LpError::Infeasible`] when no assignment satisfies all
    /// constraints and [`LpError::Unbounded`] when the objective can improve
    /// without limit.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_inner(None)
    }

    /// Like [`Problem::solve`], but warm-starts from the optimal basis of a
    /// previous, structurally identical solve (same variable count, relation
    /// sequence and bound pattern; coefficients, right-hand sides and bound
    /// values may differ).
    ///
    /// When the supplied basis is still primal-feasible for this problem's
    /// data the solver skips phase 1 and re-optimizes directly from it — a
    /// handful of pivots when the data has only drifted. Any incompatibility
    /// (shape mismatch, singular basis, infeasible vertex) silently falls
    /// back to a cold [`Problem::solve`], so the result is always the true
    /// optimum; check [`Solution::warm_started`] to see which path ran.
    pub fn solve_from_basis(&self, basis: &Basis) -> Result<Solution, LpError> {
        self.solve_inner(Some(basis))
    }

    /// Alias of [`Problem::solve`], kept for callers from the plan-cache
    /// era: every solve is canonical now, so the cold reference a
    /// warm-started solve is audited against bit for bit *is* the plain
    /// solve.
    ///
    /// # Errors
    ///
    /// Exactly as [`Problem::solve`].
    pub fn solve_canonical(&self) -> Result<Solution, LpError> {
        self.solve_inner(None)
    }

    /// Solves through the retained dense tableau oracle instead of the
    /// sparse revised simplex. For problems whose bounds are all `0`/`+∞`
    /// the result is bit-identical to [`Problem::solve`] (same normalized
    /// system, same canonical vertex, same refinement); positive finite
    /// bounds are materialized as explicit rows here and are only
    /// tolerance-comparable. Intended for audits, tests and benchmarks —
    /// the dense tableau is O(m·n) *per pivot*.
    ///
    /// # Errors
    ///
    /// Exactly as [`Problem::solve`].
    pub fn solve_dense(&self) -> Result<Solution, LpError> {
        let (objective, flip) = self.min_objective();
        let mut result = solve_dense(self.num_vars, &objective, &self.constraints, &self.upper);
        if flip {
            if let Ok(sol) = &mut result {
                flip_sense(sol);
            }
        }
        result
    }

    /// Minimization-sense objective plus whether the result must flip back.
    fn min_objective(&self) -> (Vec<f64>, bool) {
        let flip = matches!(self.sense, Sense::Max);
        let objective = if flip {
            self.objective.iter().map(|c| -c).collect()
        } else {
            self.objective.clone()
        };
        (objective, flip)
    }

    fn solve_inner(&self, basis: Option<&Basis>) -> Result<Solution, LpError> {
        // Normalize to a minimization problem; flip the objective back at the
        // end for maximization.
        let (objective, flip) = self.min_objective();
        let result = solve_sparse(
            self.num_vars,
            &objective,
            &self.constraints,
            &self.upper,
            basis,
        );
        #[cfg(feature = "audit")]
        self.audit_against_dense(&objective, &result);
        let mut sol = result?;
        if flip {
            flip_sense(&mut sol);
        }
        Ok(sol)
    }

    /// Audit-mode oracle: re-solves (size-gated) instances through the dense
    /// tableau and asserts agreement with the sparse result — bit-exact
    /// values and objective when the bound pattern is pure `0`/`+∞` (the
    /// only kind the schedulers emit), objective-tolerance otherwise
    /// (finite bounds materialize as rows in the dense system, which indexes
    /// columns differently and may canonicalize a different vertex of the
    /// same optimum). Mirrors the plan cache's warm-vs-cold oracle.
    /// Prints the full problem to stderr so an audit mismatch in a long
    /// scheduler run can be replayed as a standalone LP instance.
    #[cfg(feature = "audit")]
    fn dump_for_repro(&self) {
        eprintln!(
            "lp audit repro: NUM_VARS {}\nSENSE {:?}\nOBJ {:?}\nUPPER {:?}",
            self.num_vars, self.sense, self.objective, self.upper
        );
        for c in &self.constraints {
            eprintln!("CON {:?} {:?} rhs={:?}", c.relation, c.terms, c.rhs);
        }
    }

    #[cfg(feature = "audit")]
    fn audit_against_dense(&self, objective: &[f64], sparse: &Result<Solution, LpError>) {
        // The dense tableau is O(m·n) per pivot; keep audited instances to
        // the scales the figure suite actually solves.
        if self.constraints.len() > 400 || self.num_vars > 1600 {
            return;
        }
        let dense = solve_dense(self.num_vars, objective, &self.constraints, &self.upper);
        match (sparse, &dense) {
            (Err(se), Err(de)) => assert_eq!(
                se, de,
                "lp audit: sparse and dense solver disagree on the error kind"
            ),
            (Ok(_), Err(de)) => {
                self.dump_for_repro();
                panic!("lp audit: dense oracle failed with {de} where sparse solved")
            }
            (Err(se), Ok(_)) => {
                self.dump_for_repro();
                panic!("lp audit: sparse solver failed with {se} where dense solved")
            }
            (Ok(s), Ok(d)) => {
                let pure_bounds = self.upper.iter().all(|&u| u.is_infinite() || u == 0.0);
                if pure_bounds {
                    assert_eq!(
                        s.objective.to_bits(),
                        d.objective.to_bits(),
                        "lp audit: objective mismatch (sparse {} vs dense {})",
                        s.objective,
                        d.objective
                    );
                    for (j, (sv, dv)) in s.values.iter().zip(&d.values).enumerate() {
                        if sv.to_bits() != dv.to_bits() {
                            self.dump_for_repro();
                        }
                        assert_eq!(
                            sv.to_bits(),
                            dv.to_bits(),
                            "lp audit: value mismatch at var {j} (sparse {sv} vs dense {dv})"
                        );
                    }
                } else {
                    let scale = 1.0 + s.objective.abs().max(d.objective.abs());
                    assert!(
                        (s.objective - d.objective).abs() / scale < 1e-6,
                        "lp audit: objective mismatch beyond tolerance (sparse {} vs dense {})",
                        s.objective,
                        d.objective
                    );
                }
            }
        }
    }
}

/// Flips a minimization-sense solution back to maximization sense.
fn flip_sense(sol: &mut Solution) {
    sol.objective = -sol.objective;
    // Duals computed against the negated objective flip with it.
    for d in &mut sol.duals {
        *d = -*d;
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn objective_terms_accumulate() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (0, 2.0)]);
        p.add_objective_term(1, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        p.add_constraint(&[(1, 1.0)], Relation::Ge, 1.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(3, 1.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_bound() {
        let mut p = Problem::minimize(1);
        p.set_upper(0, -1.0);
    }
}
