//! Baseline schedulers from the Tetrium evaluation (§6.1).
//!
//! - [`InPlaceScheduler`] — default Spark behaviour: site-locality for map
//!   tasks (delay scheduling keeps tasks with their data), data-proportional
//!   reduce placement, fair sharing across jobs.
//! - [`IridiumScheduler`] — Iridium (SIGCOMM '15): map tasks local, reduce
//!   tasks placed by a network-only LP minimizing shuffle time; fair sharing
//!   across jobs.
//! - [`CentralizedScheduler`] — aggregate everything at the most powerful
//!   site and compute there.
//! - [`TetrisScheduler`] — Tetris (SIGCOMM '14) adapted to geo-distribution:
//!   multi-resource packing with *pre-configured static* bandwidth demands
//!   per task, which is exactly the modeling the paper criticizes (§7).
//! - [`SwagScheduler`] — SWAG (SoCC '15): queue-aware cross-site job
//!   ordering with site-local tasks; the compute-only ancestor Tetrium
//!   generalizes (§7).
//! - [`iridium_data_move`] — Iridium's proactive data placement, used for
//!   the `+I-data` ablation of Fig 8(a).

mod centralized;
mod data_placement;
mod in_place;
mod iridium;
mod swag;
mod tetris;

pub use centralized::CentralizedScheduler;
pub use data_placement::iridium_data_move;
pub use in_place::InPlaceScheduler;
pub use iridium::IridiumScheduler;
pub use swag::SwagScheduler;
pub use tetris::TetrisScheduler;

use tetrium_cluster::SiteId;
use tetrium_jobs::largest_remainder_round;
use tetrium_sim::{Snapshot, StagePlan, StageSnapshot, TaskAssignment, TaskPhase};

/// Builds fair-sharing plans: every job's tasks are emitted with round-robin
/// interleaved priorities, so per-site dispatch alternates across jobs.
///
/// `place` maps a runnable stage to `(task, site)` pairs in launch order.
pub(crate) fn fair_plans(
    snap: &Snapshot,
    mut place: impl FnMut(&Snapshot, &StageSnapshot) -> Vec<(usize, SiteId)>,
) -> Vec<StagePlan> {
    // Jobs in arrival order get interleaved priorities.
    let mut order: Vec<usize> = (0..snap.jobs.len()).collect();
    order.sort_by(|&a, &b| {
        snap.jobs[a]
            .arrival
            .total_cmp(&snap.jobs[b].arrival)
            .then(snap.jobs[a].id.cmp(&snap.jobs[b].id))
    });
    let njobs = order.len().max(1) as i64;
    let mut plans = Vec::new();
    for (rank, &ji) in order.iter().enumerate() {
        let job = &snap.jobs[ji];
        let mut pos: i64 = 0;
        for st in &job.runnable {
            let placed = place(snap, st);
            let assignments: Vec<TaskAssignment> = placed
                .into_iter()
                .map(|(task, site)| {
                    let priority = pos * njobs + rank as i64;
                    pos += 1;
                    TaskAssignment {
                        task,
                        site,
                        priority,
                    }
                })
                .collect();
            plans.push(StagePlan {
                job: job.id,
                stage: st.stage_index,
                assignments,
            });
        }
    }
    plans
}

/// Site-local placement for a map stage: every task runs where its
/// partition lives (FIFO order).
pub(crate) fn place_map_local(st: &StageSnapshot) -> Vec<(usize, SiteId)> {
    st.tasks
        .iter()
        .filter(|t| t.phase == TaskPhase::Unlaunched)
        .map(|t| (t.index, t.input_site.expect("map task has a home site")))
        .collect()
}

/// Data-proportional placement for a reduce stage: task counts per site
/// follow the intermediate data distribution.
pub(crate) fn place_reduce_proportional(st: &StageSnapshot) -> Vec<(usize, SiteId)> {
    let unl: Vec<usize> = st
        .tasks
        .iter()
        .filter(|t| t.phase == TaskPhase::Unlaunched)
        .map(|t| t.index)
        .collect();
    let counts = largest_remainder_round(&st.input_gb, unl.len());
    expand_counts(&unl, &counts)
}

/// Pairs unlaunched tasks (in index order) with an expanded per-site count
/// list.
pub(crate) fn expand_counts(unl: &[usize], counts: &[usize]) -> Vec<(usize, SiteId)> {
    let mut sites: Vec<SiteId> = Vec::with_capacity(unl.len());
    for (y, &c) in counts.iter().enumerate() {
        sites.extend(std::iter::repeat_n(SiteId(y), c));
    }
    while sites.len() < unl.len() {
        sites.push(SiteId(0));
    }
    unl.iter().zip(sites).map(|(&t, s)| (t, s)).collect()
}

#[cfg(test)]
pub(crate) mod test_util {
    use tetrium_jobs::{JobId, StageKind};
    use tetrium_sim::{JobSnapshot, SiteState, StageSnapshot, TaskPhase, TaskSnapshot};

    pub fn sites(spec: &[(usize, f64, f64)]) -> Vec<SiteState> {
        spec.iter()
            .map(|&(slots, up, down)| SiteState {
                slots,
                free_slots: slots,
                up_gbps: up,
                down_gbps: down,
            })
            .collect()
    }

    pub fn reduce_job(id: usize, input_gb: Vec<f64>, n_tasks: usize) -> JobSnapshot {
        let tasks: Vec<TaskSnapshot> = (0..n_tasks)
            .map(|i| TaskSnapshot {
                index: i,
                phase: TaskPhase::Unlaunched,
                input_site: None,
                input_gb: input_gb.iter().sum::<f64>() / n_tasks as f64,
                share: 1.0 / n_tasks as f64,
                running_site: None,
            })
            .collect();
        JobSnapshot {
            id: JobId(id),
            arrival: 0.0,
            total_stages: 2,
            remaining_stages: 1,
            stages: vec![],
            runnable: vec![StageSnapshot {
                stage_index: 1,
                kind: StageKind::Reduce,
                est_task_secs: 1.0,
                num_tasks: n_tasks,
                input_gb,
                tasks,
            }],
        }
    }

    pub fn map_job(id: usize, tasks_per_site: &[usize], gb: &[f64]) -> JobSnapshot {
        let mut tasks = Vec::new();
        let mut idx = 0;
        for (s, &c) in tasks_per_site.iter().enumerate() {
            for _ in 0..c {
                tasks.push(TaskSnapshot {
                    index: idx,
                    phase: TaskPhase::Unlaunched,
                    input_site: Some(tetrium_cluster::SiteId(s)),
                    input_gb: if c > 0 { gb[s] / c as f64 } else { 0.0 },
                    share: 0.0,
                    running_site: None,
                });
                idx += 1;
            }
        }
        let n = tasks.len();
        JobSnapshot {
            id: JobId(id),
            arrival: 0.0,
            total_stages: 1,
            remaining_stages: 1,
            stages: vec![],
            runnable: vec![StageSnapshot {
                stage_index: 0,
                kind: StageKind::Map,
                est_task_secs: 1.0,
                num_tasks: n,
                input_gb: gb.to_vec(),
                tasks,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    #[test]
    fn proportional_reduce_counts_follow_data() {
        let job = reduce_job(0, vec![10.0, 30.0], 4);
        let placed = place_reduce_proportional(&job.runnable[0]);
        let at1 = placed.iter().filter(|(_, s)| *s == SiteId(1)).count();
        assert_eq!(at1, 3);
    }

    #[test]
    fn map_local_keeps_tasks_home() {
        let job = map_job(0, &[2, 3], &[4.0, 9.0]);
        let placed = place_map_local(&job.runnable[0]);
        assert_eq!(placed.len(), 5);
        assert!(placed[..2].iter().all(|(_, s)| *s == SiteId(0)));
        assert!(placed[2..].iter().all(|(_, s)| *s == SiteId(1)));
    }

    #[test]
    fn fair_plans_interleave() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (4, 1.0, 1.0)]),
            jobs: vec![
                reduce_job(0, vec![1.0, 1.0], 4),
                reduce_job(1, vec![1.0, 1.0], 4),
            ],
        };
        let plans = fair_plans(&snap, |_, st| place_reduce_proportional(st));
        let mut all: Vec<(i64, usize)> = plans
            .iter()
            .flat_map(|p| {
                p.assignments
                    .iter()
                    .map(move |a| (a.priority, p.job.index()))
            })
            .collect();
        all.sort_unstable();
        assert_ne!(all[0].1, all[1].1);
    }
}
