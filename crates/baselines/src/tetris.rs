//! The Tetris baseline: multi-resource packing with static demands.

use tetrium_cluster::SiteId;
use tetrium_sim::{Scheduler, Snapshot, StagePlan, TaskAssignment, TaskPhase};

/// Tetris (SIGCOMM '14) adapted to geo-distributed clusters.
///
/// Tetris packs tasks onto machines by the *alignment* between a task's
/// pre-configured resource demand vector and the machine's available
/// resources, combined with an SRPT-style job score. The adaptation here
/// keeps Tetris's defining assumption — each task carries a **static**
/// bandwidth requirement derived from its input size — and scores sites by
/// `alignment = free_slots_norm + bw_headroom_norm · (1 - locality)`.
///
/// This is exactly the modeling the Tetrium paper criticizes for WAN
/// settings (§7): network bandwidth is fungible across sites, so a fixed
/// per-task bandwidth demand systematically mis-prices remote work. The
/// baseline exists to reproduce the Tetris comparison in §6.3.1 (Tetrium
/// improves on it by ~33% on average).
#[derive(Debug, Default)]
pub struct TetrisScheduler;

impl TetrisScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for TetrisScheduler {
    fn name(&self) -> &str {
        "tetris"
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        // Tetris weighs packing with shortest-remaining-work; rank jobs by
        // remaining task count (the proxy the paper attributes to prior
        // systems).
        let mut order: Vec<usize> = (0..snap.jobs.len()).collect();
        order.sort_by_key(|&i| {
            (
                snap.jobs[i].remaining_runnable_tasks() + remaining_future(&snap.jobs[i]),
                snap.jobs[i].id,
            )
        });

        let n = snap.sites.len();
        let max_slots = snap.sites.iter().map(|s| s.slots).max().unwrap_or(1) as f64;
        let max_bw = snap
            .sites
            .iter()
            .map(|s| s.up_gbps + s.down_gbps)
            .fold(1e-12, f64::max);
        // Mutable per-site budgets consumed as tasks are packed.
        let mut slot_budget: Vec<f64> = snap.sites.iter().map(|s| s.free_slots as f64).collect();
        let mut bw_budget: Vec<f64> = snap
            .sites
            .iter()
            .map(|s| (s.up_gbps + s.down_gbps) / 2.0)
            .collect();

        const STRIDE: i64 = 1 << 32;
        let mut plans = Vec::new();
        for (rank, &ji) in order.iter().enumerate() {
            let job = &snap.jobs[ji];
            let mut pos: i64 = 0;
            for st in &job.runnable {
                let mut assignments = Vec::new();
                for t in st.tasks.iter().filter(|t| t.phase == TaskPhase::Unlaunched) {
                    // Static per-task bandwidth demand: input volume over the
                    // estimated duration (what a capacity planner would
                    // configure), zeroed when reading locally.
                    let demand_bw = t.input_gb / st.est_task_secs.max(1e-6);
                    let mut best = 0usize;
                    let mut best_score = f64::NEG_INFINITY;
                    for site in 0..n {
                        let local = t.input_site == Some(SiteId(site));
                        let net_need = if local { 0.0 } else { demand_bw };
                        let slots_term = (slot_budget[site].max(0.0)) / max_slots;
                        let bw_term = if net_need > 0.0 {
                            ((bw_budget[site] - net_need) / max_bw).max(-1.0)
                        } else {
                            // Local reads leave the budget untouched and
                            // align perfectly.
                            bw_budget[site] / max_bw
                        };
                        let score = slots_term + bw_term;
                        if score > best_score {
                            best_score = score;
                            best = site;
                        }
                    }
                    let local = t.input_site == Some(SiteId(best));
                    slot_budget[best] -= 1.0;
                    if !local {
                        bw_budget[best] -= demand_bw;
                    }
                    assignments.push(TaskAssignment {
                        task: t.index,
                        site: SiteId(best),
                        priority: (rank as i64 + 1) * STRIDE + pos,
                    });
                    pos += 1;
                }
                plans.push(StagePlan {
                    job: job.id,
                    stage: st.stage_index,
                    assignments,
                });
            }
        }
        plans
    }
}

/// Tasks in stages that have not become runnable yet.
fn remaining_future(job: &tetrium_sim::JobSnapshot) -> usize {
    let runnable: std::collections::HashSet<usize> =
        job.runnable.iter().map(|s| s.stage_index).collect();
    job.stages
        .iter()
        .enumerate()
        .filter(|(i, m)| !m.done && !runnable.contains(i))
        .map(|(_, m)| m.num_tasks)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn packs_toward_free_capacity() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(40, 5.0, 5.0), (2, 0.1, 0.1)]),
            jobs: vec![map_job(0, &[0, 8], &[0.0, 0.8])],
        };
        let mut sched = TetrisScheduler::new();
        let plans = sched.schedule(&snap);
        // Site 0 has far more slots and bandwidth headroom; packing should
        // pull most tasks off the tiny site despite locality.
        let at0 = plans[0]
            .assignments
            .iter()
            .filter(|a| a.site == SiteId(0))
            .count();
        assert!(at0 >= 6, "site0 got {at0}");
    }

    #[test]
    fn all_tasks_assigned_once() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (4, 1.0, 1.0)]),
            jobs: vec![
                map_job(0, &[3, 3], &[3.0, 3.0]),
                reduce_job(1, vec![1.0, 1.0], 4),
            ],
        };
        let mut sched = TetrisScheduler::new();
        let plans = sched.schedule(&snap);
        let total: usize = plans.iter().map(|p| p.assignments.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn smaller_job_outranks_larger() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0)]),
            jobs: vec![map_job(0, &[8], &[1.0]), map_job(1, &[2], &[0.2])],
        };
        let mut sched = TetrisScheduler::new();
        let plans = sched.schedule(&snap);
        let min_pri = |job: usize| {
            plans
                .iter()
                .filter(|p| p.job.index() == job)
                .flat_map(|p| p.assignments.iter().map(|a| a.priority))
                .min()
                .unwrap()
        };
        assert!(min_pri(1) < min_pri(0));
    }
}
