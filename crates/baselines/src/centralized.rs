//! The Centralized baseline: aggregate everything at one powerful site.

use crate::fair_plans;
use tetrium_cluster::SiteId;
use tetrium_sim::{Scheduler, Snapshot, StagePlan, TaskPhase};

/// Centralized execution (§6.3 baseline).
///
/// Every task of every stage runs at the most capable site; map tasks pull
/// their partitions there (which is where the aggregation cost is paid) and
/// later stages are fully local. This models the "aggregate all input data
/// to a powerful datacenter" strategy the paper argues against.
#[derive(Debug, Default)]
pub struct CentralizedScheduler {
    target: Option<SiteId>,
}

impl CentralizedScheduler {
    /// Creates the baseline; the target site is picked from the first
    /// snapshot (most slots, best links as tie-break).
    pub fn new() -> Self {
        Self { target: None }
    }

    /// Creates the baseline with an explicit aggregation site.
    pub fn with_target(site: SiteId) -> Self {
        Self { target: Some(site) }
    }
}

impl Scheduler for CentralizedScheduler {
    fn name(&self) -> &str {
        "centralized"
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        let target = *self.target.get_or_insert_with(|| {
            let best = snap
                .sites
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.slots
                        .cmp(&b.slots)
                        .then((a.up_gbps + a.down_gbps).total_cmp(&(b.up_gbps + b.down_gbps)))
                        .then(ib.cmp(ia))
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            SiteId(best)
        });
        fair_plans(snap, |_, st| {
            st.tasks
                .iter()
                .filter(|t| t.phase == TaskPhase::Unlaunched)
                .map(|t| (t.index, target))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn everything_runs_at_the_biggest_site() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (40, 5.0, 5.0), (10, 2.0, 2.0)]),
            jobs: vec![
                map_job(0, &[2, 2, 2], &[1.0, 1.0, 1.0]),
                reduce_job(1, vec![3.0, 3.0, 3.0], 6),
            ],
        };
        let mut sched = CentralizedScheduler::new();
        let plans = sched.schedule(&snap);
        for p in &plans {
            for a in &p.assignments {
                assert_eq!(a.site, SiteId(1));
            }
        }
    }

    #[test]
    fn explicit_target_is_honored() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (40, 5.0, 5.0)]),
            jobs: vec![map_job(0, &[1, 1], &[1.0, 1.0])],
        };
        let mut sched = CentralizedScheduler::with_target(SiteId(0));
        let plans = sched.schedule(&snap);
        assert!(plans[0].assignments.iter().all(|a| a.site == SiteId(0)));
    }
}
