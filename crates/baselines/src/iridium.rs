//! The Iridium baseline: network-centric placement (SIGCOMM '15).

use crate::{expand_counts, fair_plans, place_map_local, place_reduce_proportional};
use tetrium_core::{solve_reduce_placement, ReduceProblem};
use tetrium_jobs::StageKind;
use tetrium_sim::{Scheduler, Snapshot, StagePlan, TaskPhase};

/// Iridium's scheduler (§6.1 baseline (b)).
///
/// Map tasks run at their data; reduce tasks are placed by a linear program
/// that minimizes shuffle time *only* (Iridium assumes compute slots are
/// never the bottleneck: "all tasks can start at once without queuing
/// delay", §3.2). Jobs share the cluster fairly, as in the Spark prototype
/// Iridium extends.
#[derive(Debug, Default)]
pub struct IridiumScheduler;

impl IridiumScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for IridiumScheduler {
    fn name(&self) -> &str {
        "iridium"
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        fair_plans(snap, |snap, st| match st.kind {
            StageKind::Map => place_map_local(st),
            StageKind::Reduce => {
                let unl: Vec<usize> = st
                    .tasks
                    .iter()
                    .filter(|t| t.phase == TaskPhase::Unlaunched)
                    .map(|t| t.index)
                    .collect();
                if unl.is_empty() {
                    return Vec::new();
                }
                let share_rem: f64 = unl.iter().map(|&i| st.tasks[i].share).sum();
                let shuffle_gb: Vec<f64> = st.input_gb.iter().map(|v| v * share_rem).collect();
                let problem = ReduceProblem {
                    shuffle_gb,
                    num_tasks: unl.len(),
                    task_secs: st.est_task_secs,
                    up_gbps: snap.up_vec(),
                    down_gbps: snap.down_vec(),
                    slots: snap.slots_vec(),
                    wan_budget_gb: None,
                    network_only: true,
                    next_stage_out_gb: None,
                };
                match solve_reduce_placement(&problem) {
                    Ok(p) => expand_counts(&unl, &p.tasks_at),
                    Err(_) => place_reduce_proportional(st),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn reduce_placement_minimizes_shuffle_not_compute() {
        // Fig 4 reduce stage: Iridium ignores that site 3 has few slots.
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(40, 5.0, 5.0), (10, 1.0, 1.0), (20, 2.0, 5.0)]),
            jobs: vec![reduce_job(0, vec![10.0, 15.0, 25.0], 500)],
        };
        let mut sched = IridiumScheduler::new();
        let plans = sched.schedule(&snap);
        let mut counts = [0usize; 3];
        for a in &plans[0].assignments {
            counts[a.site.index()] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 500);
        // The shuffle makespan is governed by site 1's 1 Gbps links: its
        // optimal fraction balances upload against download at r1 = 0.3,
        // so the compute-blind placement parks 30% of the tasks on the
        // 10-slot site — a compute-aware scheduler would cap it near its
        // 1/7 slot share. The r0/r2 split is a free direction of the
        // optimal face, so only site 1's forced share is asserted.
        assert!(counts[1] >= 140, "counts {counts:?}");
        assert!(counts[2] > 0, "counts {counts:?}");
    }

    #[test]
    fn map_tasks_never_move() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (4, 1.0, 1.0)]),
            jobs: vec![map_job(0, &[2, 2], &[2.0, 2.0])],
        };
        let mut sched = IridiumScheduler::new();
        let plans = sched.schedule(&snap);
        for a in &plans[0].assignments {
            let home = snap.jobs[0].runnable[0].tasks[a.task].input_site.unwrap();
            assert_eq!(a.site, home);
        }
    }
}
