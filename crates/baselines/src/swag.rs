//! The SWAG baseline: compute-slot-only coordinated job scheduling.
//!
//! SWAG (Hung et al., SoCC '15 — cited as [32] in the paper) coordinates the
//! *job order* across geo-distributed datacenters so that a job's tasks at
//! every site finish around the same time, but keeps every task with its
//! data and ignores network transfer entirely — the paper positions Tetrium
//! as generalizing it to multiple resources (§7).
//!
//! The ranking follows SWAG's workload-aware greedy: a job's estimated
//! completion is the worst per-site queue-plus-demand ratio
//! `(backlog_x + demand_x) / S_x`; the job minimizing it runs first and its
//! demand joins the backlog.

use crate::{place_map_local, place_reduce_proportional};
use tetrium_jobs::StageKind;
use tetrium_sim::{Scheduler, Snapshot, StagePlan, TaskAssignment};

/// SWAG-style scheduler: site-local placement, queue-aware job ordering.
#[derive(Debug, Default)]
pub struct SwagScheduler;

impl SwagScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for SwagScheduler {
    fn name(&self) -> &str {
        "swag"
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        let n = snap.sites.len();
        // Per-site demand (task-seconds) of each job's runnable work under
        // site-local placement.
        let mut demands: Vec<(usize, Vec<f64>)> = Vec::with_capacity(snap.jobs.len());
        for (ji, job) in snap.jobs.iter().enumerate() {
            let mut d = vec![0.0f64; n];
            for st in &job.runnable {
                match st.kind {
                    StageKind::Map => {
                        for t in st.unlaunched() {
                            let x = t.input_site.expect("map task has a home site").index();
                            d[x] += st.est_task_secs;
                        }
                    }
                    StageKind::Reduce => {
                        // Data-proportional placement spreads demand by the
                        // intermediate distribution.
                        let total: f64 = st.input_gb.iter().sum();
                        let unl = st.unlaunched_count() as f64;
                        if total > 0.0 {
                            for (x, v) in st.input_gb.iter().enumerate() {
                                d[x] += st.est_task_secs * unl * v / total;
                            }
                        } else if n > 0 {
                            d[0] += st.est_task_secs * unl;
                        }
                    }
                }
            }
            demands.push((ji, d));
        }

        // Greedy order: repeatedly pick the job whose completion against the
        // current backlog is earliest, then fold its demand into the backlog.
        let mut backlog = vec![0.0f64; n];
        let mut order: Vec<usize> = Vec::with_capacity(demands.len());
        let mut remaining: Vec<(usize, Vec<f64>)> = demands;
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, (ji, d))| {
                    let eta = (0..n)
                        .map(|x| (backlog[x] + d[x]) / snap.sites[x].slots.max(1) as f64)
                        .fold(0.0f64, f64::max);
                    (pos, (eta, *ji))
                })
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
                .expect("non-empty");
            let (ji, d) = remaining.remove(pos);
            for x in 0..n {
                backlog[x] += d[x];
            }
            order.push(ji);
        }

        // Emit site-local plans with rank-banded priorities.
        const STRIDE: i64 = 1 << 32;
        let mut plans = Vec::new();
        for (rank, &ji) in order.iter().enumerate() {
            let job = &snap.jobs[ji];
            let mut pos: i64 = 0;
            for st in &job.runnable {
                let placed = match st.kind {
                    StageKind::Map => place_map_local(st),
                    StageKind::Reduce => place_reduce_proportional(st),
                };
                let assignments: Vec<TaskAssignment> = placed
                    .into_iter()
                    .map(|(task, site)| {
                        let priority = (rank as i64 + 1) * STRIDE + pos;
                        pos += 1;
                        TaskAssignment {
                            task,
                            site,
                            priority,
                        }
                    })
                    .collect();
                plans.push(StagePlan {
                    job: job.id,
                    stage: st.stage_index,
                    assignments,
                });
            }
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;
    use tetrium_cluster::SiteId;

    #[test]
    fn shorter_queue_impact_job_goes_first() {
        // Job 0 loads the single-slot site heavily; job 1 is tiny. SWAG must
        // rank job 1 first.
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(1, 1.0, 1.0), (8, 1.0, 1.0)]),
            jobs: vec![
                map_job(0, &[12, 0], &[1.2, 0.0]),
                map_job(1, &[1, 1], &[0.1, 0.1]),
            ],
        };
        let mut sched = SwagScheduler::new();
        let plans = sched.schedule(&snap);
        let min_pri = |job: usize| {
            plans
                .iter()
                .filter(|p| p.job.index() == job)
                .flat_map(|p| p.assignments.iter().map(|a| a.priority))
                .min()
                .unwrap()
        };
        assert!(min_pri(1) < min_pri(0));
    }

    #[test]
    fn placement_is_site_local() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(2, 1.0, 1.0), (2, 1.0, 1.0)]),
            jobs: vec![map_job(0, &[2, 3], &[1.0, 2.0])],
        };
        let mut sched = SwagScheduler::new();
        let plans = sched.schedule(&snap);
        for a in &plans[0].assignments {
            let home = snap.jobs[0].runnable[0].tasks[a.task].input_site.unwrap();
            assert_eq!(a.site, home);
        }
    }

    #[test]
    fn reduce_demand_follows_data() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (4, 1.0, 1.0)]),
            jobs: vec![reduce_job(0, vec![1.0, 7.0], 8)],
        };
        let mut sched = SwagScheduler::new();
        let plans = sched.schedule(&snap);
        let at1 = plans[0]
            .assignments
            .iter()
            .filter(|a| a.site == SiteId(1))
            .count();
        assert_eq!(at1, 7);
    }
}
