//! The In-Place baseline: default Spark with site-locality.

use crate::{fair_plans, place_map_local, place_reduce_proportional};
use tetrium_jobs::StageKind;
use tetrium_sim::{Scheduler, Snapshot, StagePlan};

/// Site-locality scheduling (§6.1 baseline (a)).
///
/// Map tasks run at the site holding their input partition (the effect of
/// delay scheduling, which waits for a local slot rather than running
/// remotely), reduce tasks are spread proportionally to the intermediate
/// data, and slots are shared fairly across jobs — the behaviour of stock
/// Spark with the fair scheduler.
#[derive(Debug, Default)]
pub struct InPlaceScheduler;

impl InPlaceScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for InPlaceScheduler {
    fn name(&self) -> &str {
        "in-place"
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        fair_plans(snap, |_, st| match st.kind {
            StageKind::Map => place_map_local(st),
            StageKind::Reduce => place_reduce_proportional(st),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;
    use tetrium_cluster::SiteId;

    #[test]
    fn maps_stay_local_reduces_follow_data() {
        let snap = Snapshot {
            now: 0.0,
            sites: sites(&[(4, 1.0, 1.0), (4, 1.0, 1.0)]),
            jobs: vec![
                map_job(0, &[3, 1], &[3.0, 1.0]),
                reduce_job(1, vec![0.0, 8.0], 4),
            ],
        };
        let mut sched = InPlaceScheduler::new();
        let plans = sched.schedule(&snap);
        let map_plan = plans.iter().find(|p| p.job.index() == 0).unwrap();
        assert!(map_plan
            .assignments
            .iter()
            .take(3)
            .all(|a| a.site == SiteId(0)));
        let red_plan = plans.iter().find(|p| p.job.index() == 1).unwrap();
        assert!(red_plan.assignments.iter().all(|a| a.site == SiteId(1)));
    }
}
