//! Iridium's proactive data placement (the `+I-data` ablation of Fig 8a).
//!
//! Iridium moves input data *before* queries arrive, iteratively draining
//! the site whose uplink would bottleneck a future shuffle toward sites
//! with spare downlink. The Tetrium evaluation applies this movement on top
//! of Tetrium and finds it does not help ("it is difficult to predict the
//! resource availability in future scheduling instances", §6.3.1); we
//! implement the movement so the harness can reproduce that ablation.

use tetrium_cluster::DataDistribution;

/// Iteratively re-balances a dataset toward shuffle-friendliness.
///
/// In each step the site with the largest prospective upload time
/// `I_x / B_x^up` sheds a chunk (1% of the total) to the site with the
/// smallest prospective download pressure `I_y / B_y^down`, as long as the
/// bottleneck estimate improves. Returns the new distribution and the GB
/// moved across the WAN (charged to the run's WAN usage by the harness).
///
/// `max_moved_frac` caps movement (Iridium bounds movement by the available
/// "lag" before queries arrive); `0.5` is a generous default.
pub fn iridium_data_move(
    input: &DataDistribution,
    up_gbps: &[f64],
    down_gbps: &[f64],
    max_moved_frac: f64,
) -> (DataDistribution, f64) {
    let n = input.len();
    assert_eq!(up_gbps.len(), n);
    assert_eq!(down_gbps.len(), n);
    let total = input.total();
    if total <= 0.0 || n < 2 {
        return (input.clone(), 0.0);
    }
    let chunk = total * 0.01;
    let budget = total * max_moved_frac.clamp(0.0, 1.0);

    let mut vols: Vec<f64> = input.as_slice().to_vec();
    let mut moved = 0.0;
    let bottleneck = |v: &[f64]| -> f64 {
        let mut b = 0.0f64;
        for x in 0..n {
            // Prospective shuffle: each site uploads what others will read
            // and downloads its share; use the upload side as Iridium does.
            b = b.max(v[x] / up_gbps[x]).max(v[x] / down_gbps[x]);
        }
        b
    };
    while moved + chunk <= budget {
        let cur = bottleneck(&vols);
        // Donor: the worst upload-time site. Receiver: the site whose
        // pressure is lowest after receiving a chunk.
        let donor = (0..n)
            .max_by(|&a, &b| (vols[a] / up_gbps[a]).total_cmp(&(vols[b] / up_gbps[b])))
            .unwrap();
        if vols[donor] < chunk {
            break;
        }
        let receiver = (0..n)
            .filter(|&y| y != donor)
            .min_by(|&a, &b| {
                ((vols[a] + chunk) / up_gbps[a].min(down_gbps[a]))
                    .total_cmp(&((vols[b] + chunk) / up_gbps[b].min(down_gbps[b])))
            })
            .unwrap();
        let mut trial = vols.clone();
        trial[donor] -= chunk;
        trial[receiver] += chunk;
        if bottleneck(&trial) + 1e-12 >= cur {
            break; // No further improvement.
        }
        vols = trial;
        moved += chunk;
    }
    (DataDistribution::new(vols), moved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_the_bottleneck_site() {
        // Site 1 holds most data behind a slow uplink.
        let input = DataDistribution::new(vec![10.0, 80.0, 10.0]);
        let up = [5.0, 0.5, 5.0];
        let down = [5.0, 5.0, 5.0];
        let (out, moved) = iridium_data_move(&input, &up, &down, 0.5);
        assert!(moved > 0.0);
        assert!(out.at(tetrium_cluster::SiteId(1)) < 80.0);
        assert!((out.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_input_moves_nothing() {
        let input = DataDistribution::new(vec![10.0, 10.0]);
        let (out, moved) = iridium_data_move(&input, &[1.0, 1.0], &[1.0, 1.0], 0.5);
        assert_eq!(moved, 0.0);
        assert_eq!(out, input);
    }

    #[test]
    fn movement_respects_budget() {
        let input = DataDistribution::new(vec![0.0, 100.0]);
        let (_, moved) = iridium_data_move(&input, &[10.0, 0.1], &[10.0, 10.0], 0.1);
        assert!(moved <= 10.0 + 1e-9);
    }

    #[test]
    fn empty_input_is_identity() {
        let input = DataDistribution::zeros(3);
        let (out, moved) = iridium_data_move(&input, &[1.0; 3], &[1.0; 3], 0.5);
        assert_eq!(moved, 0.0);
        assert_eq!(out.total(), 0.0);
    }
}
