//! Tetrium reproduction: multi-resource scheduling for wide-area data
//! analytics (EuroSys '18), in Rust.
//!
//! This facade crate re-exports the workspace and adds the high-level
//! entry points used by the examples and the benchmark harness:
//!
//! - [`SchedulerKind`] names every scheduler of the evaluation (Tetrium and
//!   all baselines) and builds fresh instances;
//! - [`run_workload`] simulates a workload under a scheduler and returns
//!   the per-job report;
//! - [`isolated_service_times`] runs each job alone to obtain the
//!   denominators of the slowdown metric (§6.1).
//!
//! # Examples
//!
//! ```
//! use tetrium::{run_workload, SchedulerKind};
//! use tetrium::workload::{fig4_cluster, fig4_job};
//! use tetrium::sim::EngineConfig;
//!
//! let report = run_workload(
//!     fig4_cluster(),
//!     vec![fig4_job()],
//!     SchedulerKind::Tetrium,
//!     EngineConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(report.jobs.len(), 1);
//! ```

pub use tetrium_baselines as baselines;
pub use tetrium_cluster as cluster;
pub use tetrium_core as core;
pub use tetrium_jobs as jobs;
pub use tetrium_lp as lp;
pub use tetrium_metrics as metrics;
pub use tetrium_net as net;
pub use tetrium_obs as obs;
pub use tetrium_sim as sim;
pub use tetrium_workload as workload;

use tetrium_baselines::{
    CentralizedScheduler, InPlaceScheduler, IridiumScheduler, SwagScheduler, TetrisScheduler,
};
use tetrium_cluster::Cluster;
use tetrium_core::{TetriumConfig, TetriumScheduler};
use tetrium_jobs::Job;
use tetrium_sim::{Engine, EngineConfig, RunReport, Scheduler, SimError};

/// Every scheduler of the paper's evaluation, as a buildable enum.
#[derive(Debug, Clone)]
pub enum SchedulerKind {
    /// Tetrium with the default configuration (§3 + §4).
    Tetrium,
    /// Tetrium with a custom configuration (knobs, ablations).
    TetriumWith(TetriumConfig),
    /// Default Spark: site-locality and fair sharing.
    InPlace,
    /// Iridium: shuffle-optimal reduce placement, network-only.
    Iridium,
    /// Aggregate everything to the most capable site.
    Centralized,
    /// Tetris: multi-resource packing with static demands.
    Tetris,
    /// SWAG: queue-aware job ordering with site-local tasks (compute only).
    Swag,
}

impl SchedulerKind {
    /// Builds a fresh scheduler instance.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Tetrium => Box::new(TetriumScheduler::standard()),
            SchedulerKind::TetriumWith(cfg) => Box::new(TetriumScheduler::new(cfg.clone())),
            SchedulerKind::InPlace => Box::new(InPlaceScheduler::new()),
            SchedulerKind::Iridium => Box::new(IridiumScheduler::new()),
            SchedulerKind::Centralized => Box::new(CentralizedScheduler::new()),
            SchedulerKind::Tetris => Box::new(TetrisScheduler::new()),
            SchedulerKind::Swag => Box::new(SwagScheduler::new()),
        }
    }

    /// The scheduler's report name.
    pub fn name(&self) -> String {
        self.build().name().to_string()
    }
}

/// Runs `jobs` over `cluster` under the given scheduler and returns the
/// report.
///
/// # Errors
///
/// Returns [`SimError`] if the scheduler stalls (never happens with the
/// bundled schedulers).
pub fn run_workload(
    cluster: Cluster,
    jobs: Vec<Job>,
    scheduler: SchedulerKind,
    cfg: EngineConfig,
) -> Result<RunReport, SimError> {
    Engine::new(cluster, jobs, scheduler.build(), cfg).run()
}

/// Like [`run_workload`], but applies a mid-run resource-dynamics timeline
/// (capacity drops and recoveries, link degradations, site outages) through
/// the engine's event queue.
///
/// # Errors
///
/// Returns [`SimError`] if the scheduler stalls (for instance when an
/// outage without recovery strands tasks a scheduler insists on placing at
/// the dead site) or a task exhausts its retry budget.
pub fn run_workload_dynamic(
    cluster: Cluster,
    jobs: Vec<Job>,
    scheduler: SchedulerKind,
    cfg: EngineConfig,
    dynamics: tetrium_cluster::DynamicsTimeline,
) -> Result<RunReport, SimError> {
    Engine::new(cluster, jobs, scheduler.build(), cfg)
        .with_dynamics(dynamics)
        .run()
}

/// Computes each job's isolated service time: the response time when it
/// runs alone on an otherwise idle cluster under the same scheduler and a
/// noise-free engine. Returned in the same order as `jobs`.
pub fn isolated_service_times(
    cluster: &Cluster,
    jobs: &[Job],
    scheduler: SchedulerKind,
) -> Result<Vec<f64>, SimError> {
    let mut out = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut alone = job.clone();
        alone.arrival = 0.0;
        let report = Engine::new(
            cluster.clone(),
            vec![alone],
            scheduler.build(),
            EngineConfig::default(),
        )
        .run()?;
        out.push(report.jobs[0].response.max(1e-9));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_workload::{fig4_cluster, fig4_job};

    #[test]
    fn all_schedulers_complete_the_worked_example() {
        for kind in [
            SchedulerKind::Tetrium,
            SchedulerKind::InPlace,
            SchedulerKind::Iridium,
            SchedulerKind::Centralized,
            SchedulerKind::Tetris,
            SchedulerKind::Swag,
        ] {
            let report = run_workload(
                fig4_cluster(),
                vec![fig4_job()],
                kind.clone(),
                EngineConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
            assert_eq!(report.jobs.len(), 1);
            assert!(report.jobs[0].response > 0.0);
        }
    }

    #[test]
    fn dynamic_run_applies_the_timeline() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline, SiteId};
        let clean = run_workload(
            fig4_cluster(),
            vec![fig4_job()],
            SchedulerKind::Tetrium,
            EngineConfig::default(),
        )
        .unwrap();
        let timeline = DynamicsTimeline::new(vec![DynamicsEvent::new(
            SiteId(0),
            clean.makespan * 0.25,
            DynamicsChange::Capacity { keep: 0.5 },
        )]);
        let degraded = run_workload_dynamic(
            fig4_cluster(),
            vec![fig4_job()],
            SchedulerKind::Tetrium,
            EngineConfig::default(),
            timeline,
        )
        .unwrap();
        assert_eq!(degraded.dynamics_events, 1);
        assert!(degraded.jobs[0].response >= clean.jobs[0].response - 1e-9);
    }

    #[test]
    fn isolated_times_are_positive() {
        let times =
            isolated_service_times(&fig4_cluster(), &[fig4_job()], SchedulerKind::Tetrium).unwrap();
        assert_eq!(times.len(), 1);
        assert!(times[0] > 0.0);
    }
}
