//! Compare every scheduler on an EC2-like geo-distributed deployment.
//!
//! Generates a TPC-DS-like decision-support workload (long chains of
//! dependent stages, skewed inputs) over the paper's 8-region EC2 preset
//! and runs it under Tetrium and all four baselines, printing average and
//! tail response times, WAN usage, and scheduler overhead.
//!
//! Run with: `cargo run --release --example geo_analytics_benchmark`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::sim::EngineConfig;
use tetrium::workload::tpcds_like_jobs;
use tetrium::{run_workload, SchedulerKind};

fn main() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(42);
    let jobs = tpcds_like_jobs(&cluster, 10, 25.0, 8.0, &mut rng);
    println!(
        "workload: {} TPC-DS-like queries, {}–{} stages, {:.0} GB total input\n",
        jobs.len(),
        jobs.iter().map(|j| j.num_stages()).min().unwrap(),
        jobs.iter().map(|j| j.num_stages()).max().unwrap(),
        jobs.iter().map(|j| j.input_gb()).sum::<f64>()
    );
    println!(
        "{:<13} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "scheduler", "avg (s)", "p50 (s)", "p90 (s)", "WAN (GB)", "decisions"
    );
    let mut best: Option<(String, f64)> = None;
    for kind in [
        SchedulerKind::Tetrium,
        SchedulerKind::Iridium,
        SchedulerKind::InPlace,
        SchedulerKind::Tetris,
        SchedulerKind::Centralized,
    ] {
        let r = run_workload(
            cluster.clone(),
            jobs.clone(),
            kind,
            EngineConfig::trace_like(7),
        )
        .expect("run completes");
        println!(
            "{:<13} {:>9.0} {:>9.0} {:>9.0} {:>10.1} {:>8} x {:>2.0}ms",
            r.scheduler,
            r.avg_response(),
            r.response_percentile(0.5),
            r.response_percentile(0.9),
            r.total_wan_gb,
            r.sched_invocations,
            r.sched_wall_secs * 1e3 / r.sched_invocations.max(1) as f64,
        );
        let avg = r.avg_response();
        if best.as_ref().is_none_or(|(_, b)| avg < *b) {
            best = Some((r.scheduler.clone(), avg));
        }
    }
    let (winner, _) = best.unwrap();
    println!("\nfastest average response: {winner}");
}
