//! Inspect where slot time goes with task-level traces.
//!
//! Runs the Fig 4 worked example with trace recording enabled and prints,
//! per scheduler, the per-site slot utilization and the fetch/compute split
//! — the diagnostic behind the paper's argument that WAN transfers must be
//! scheduled jointly with compute.
//!
//! Run with: `cargo run --release --example slot_timeline`

use tetrium::metrics::{fetch_compute_split, site_utilization};
use tetrium::sim::EngineConfig;
use tetrium::workload::{fig4_cluster, fig4_job};
use tetrium::{run_workload, SchedulerKind};

fn main() {
    let cluster = fig4_cluster();
    let slots = cluster.slots_vec();
    for kind in [SchedulerKind::InPlace, SchedulerKind::Tetrium] {
        let report = run_workload(
            cluster.clone(),
            vec![fig4_job()],
            kind,
            EngineConfig {
                record_trace: true,
                ..EngineConfig::default()
            },
        )
        .expect("run completes");
        let util = site_utilization(&report.trace, &slots, report.makespan);
        let (fetch, compute) = fetch_compute_split(&report.trace);
        println!(
            "{:<10} response {:6.1} s   slot util per site {:?}   fetch/compute {:.0}/{:.0} slot-s",
            report.scheduler,
            report.jobs[0].response,
            util.iter()
                .map(|u| (u * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            fetch,
            compute,
        );
    }
    println!(
        "\nIn-Place leaves the big site under-used while the slot-starved site grinds\n\
         through waves; Tetrium spends fetch time to level utilization."
    );
}
