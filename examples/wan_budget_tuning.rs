//! Tune the WAN-usage (ρ) and fairness (ε) knobs.
//!
//! Sweeps both control knobs of §4.3/§4.4 over a Big-Data-benchmark-like
//! workload on the 8-region EC2 preset and prints the trade-off each knob
//! exposes: ρ trades response time against bytes shipped over the WAN,
//! ε trades average response time against even slot sharing across jobs.
//!
//! Run with: `cargo run --release --example wan_budget_tuning`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::core::{TetriumConfig, WanKnob};
use tetrium::metrics::jain_index;
use tetrium::sim::EngineConfig;
use tetrium::workload::bigdata_like_jobs;
use tetrium::{isolated_service_times, run_workload, SchedulerKind};

fn main() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(21);
    let jobs = bigdata_like_jobs(&cluster, 10, 60.0, 15.0, &mut rng);

    println!("rho sweep (WAN budget):");
    println!("{:>6} {:>12} {:>10}", "rho", "avg resp", "WAN (GB)");
    for rho in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = run_workload(
            cluster.clone(),
            jobs.clone(),
            SchedulerKind::TetriumWith(TetriumConfig {
                wan: WanKnob::new(rho),
                ..TetriumConfig::default()
            }),
            EngineConfig::default(),
        )
        .expect("completes");
        println!(
            "{rho:>6.2} {:>10.0} s {:>10.1}",
            r.avg_response(),
            r.total_wan_gb
        );
    }

    println!("\nepsilon sweep (fairness):");
    println!("{:>6} {:>12} {:>16}", "eps", "avg resp", "Jain(slowdown)");
    let isolated = isolated_service_times(&cluster, &jobs, SchedulerKind::Tetrium)
        .expect("isolated runs complete");
    for eps in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let r = run_workload(
            cluster.clone(),
            jobs.clone(),
            SchedulerKind::TetriumWith(TetriumConfig {
                epsilon: eps,
                ..TetriumConfig::default()
            }),
            EngineConfig::default(),
        )
        .expect("completes");
        let slowdowns: Vec<f64> = r
            .jobs
            .iter()
            .zip(&isolated)
            .map(|(j, &iso)| j.response / iso)
            .collect();
        println!(
            "{eps:>6.2} {:>10.0} s {:>16.3}",
            r.avg_response(),
            jain_index(&slowdowns)
        );
    }
    println!(
        "\n(rho -> 0 minimizes WAN bytes; eps -> 0 reserves slots fairly across jobs.\n\
         On this bandwidth-starved EC2 preset frugality also wins response time;\n\
         in compute-bound regimes the budget buys speed instead — compare the\n\
         quickstart example and the fig10 bench.)"
    );
}
