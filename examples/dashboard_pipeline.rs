//! The paper's motivating scenario: a recurring operational dashboard.
//!
//! A fixed analytics DAG re-runs every two minutes over freshly generated
//! session logs whose per-site volumes follow working hours around the
//! globe (§1–2.1). Dashboard freshness is the tail response time of the
//! stream; this example compares schedulers on it.
//!
//! Run with: `cargo run --release --example dashboard_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::core::TetriumConfig;
use tetrium::sim::EngineConfig;
use tetrium::workload::{recurring_dashboard_jobs, RecurringParams};
use tetrium::{run_workload, SchedulerKind};

fn main() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(8);
    let params = RecurringParams {
        period_secs: 120.0,
        input_gb: 25.0,
        diurnal_peak_ratio: 12.0,
        ..RecurringParams::default()
    };
    let jobs = recurring_dashboard_jobs(&cluster, 15, &params, &mut rng);
    println!(
        "stream: {} dashboard refreshes, every {:.0} s, {:.0} GB each, diurnal skew {}x\n",
        jobs.len(),
        params.period_secs,
        params.input_gb,
        params.diurnal_peak_ratio
    );
    println!(
        "{:<13} {:>10} {:>10} {:>10} {:>11}",
        "scheduler", "avg (s)", "p50 (s)", "p90 (s)", "WAN (GB)"
    );
    let eps06 = SchedulerKind::TetriumWith(TetriumConfig {
        epsilon: 0.6,
        ..TetriumConfig::default()
    });
    for (label, kind) in [
        ("tetrium", SchedulerKind::Tetrium),
        ("tetrium e=0.6", eps06),
        ("iridium", SchedulerKind::Iridium),
        ("in-place", SchedulerKind::InPlace),
        ("swag", SchedulerKind::Swag),
    ] {
        let r = run_workload(
            cluster.clone(),
            jobs.clone(),
            kind,
            EngineConfig::trace_like(3),
        )
        .expect("run completes");
        println!(
            "{:<13} {:>10.1} {:>10.1} {:>10.1} {:>11.1}",
            label,
            r.avg_response(),
            r.response_percentile(0.5),
            r.response_percentile(0.9),
            r.total_wan_gb,
        );
    }
    println!(
        "\nThe input's heavy site rotates with the sun, so static provisioning can\n\
         never match it (§2.1). Pure SRPT (eps=1) wins the median but starves\n\
         refreshes stuck behind a burst; the eps knob (§4.4) moves along that\n\
         trade-off, and fair-sharing schedulers bound the tail at the median's\n\
         expense."
    );
}
