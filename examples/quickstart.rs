//! Quickstart: schedule one geo-distributed job with Tetrium.
//!
//! Reconstructs the paper's worked example (Fig 3/4): three sites with
//! heterogeneous slots and WAN links, one map-reduce job whose input is
//! skewed toward the weakest sites. Runs it under Tetrium and under
//! site-locality scheduling and prints what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use tetrium::sim::EngineConfig;
use tetrium::workload::{fig4_cluster, fig4_job};
use tetrium::{run_workload, SchedulerKind};

fn main() {
    let cluster = fig4_cluster();
    println!("cluster:");
    for (id, site) in cluster.iter() {
        println!(
            "  {id}: {:>3} slots, {:>4.1} GB/s up, {:>4.1} GB/s down ({})",
            site.slots, site.up_gbps, site.down_gbps, site.name
        );
    }
    let job = fig4_job();
    println!(
        "\njob: {} map tasks + {} reduce tasks over {:.0} GB of input (20/30/50 split)\n",
        job.stages[0].num_tasks,
        job.stages[1].num_tasks,
        job.input_gb()
    );

    for kind in [
        SchedulerKind::InPlace,
        SchedulerKind::Iridium,
        SchedulerKind::Tetrium,
    ] {
        let report = run_workload(
            cluster.clone(),
            vec![job.clone()],
            kind,
            EngineConfig::default(),
        )
        .expect("run completes");
        let j = &report.jobs[0];
        println!(
            "{:<10} response {:6.1} s   WAN {:5.1} GB   (map {:5.1} s, reduce {:5.1} s)",
            report.scheduler,
            j.response,
            j.wan_gb,
            j.stage_spans[0].1 - j.stage_spans[0].0,
            j.stage_spans[1].1 - j.stage_spans[1].0,
        );
    }
    println!(
        "\nTetrium moves map work off the slot-starved sites and places reduce tasks\n\
         by the joint network+compute LP — the paper's §2.2 example, end to end."
    );
}
