//! React to mid-run capacity drops with limited re-assignment (§4.2).
//!
//! Two sites lose 40% of their compute and network capacity while a batch
//! of jobs runs. Tetrium re-plans, but updating every site manager is
//! expensive, so the `k` knob bounds how many sites may change assignment;
//! this example sweeps `k` and prints the cost of reacting narrowly.
//!
//! Run with: `cargo run --release --example capacity_drop_recovery`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::{ec2_eight_regions, CapacityDrop, SiteId};
use tetrium::core::TetriumConfig;
use tetrium::sim::{Engine, EngineConfig};
use tetrium::workload::bigdata_like_jobs;
use tetrium::SchedulerKind;

fn main() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(31);
    let jobs = bigdata_like_jobs(&cluster, 10, 15.0, 20.0, &mut rng);
    let drops = vec![
        CapacityDrop::new(SiteId(0), 60.0, 0.4),
        CapacityDrop::new(SiteId(5), 120.0, 0.4),
    ];
    println!("two sites lose 40% capacity at t=60s and t=120s\n");
    println!("{:>14} {:>12}", "update budget", "avg resp");

    // Unconstrained re-planning as the reference point.
    let full = Engine::new(
        cluster.clone(),
        jobs.clone(),
        SchedulerKind::Tetrium.build(),
        EngineConfig::default(),
    )
    .with_drops(drops.clone())
    .run()
    .expect("completes");
    println!("{:>14} {:>10.0} s", "unlimited", full.avg_response());

    for k in [1usize, 2, 4, 8] {
        let r = Engine::new(
            cluster.clone(),
            jobs.clone(),
            SchedulerKind::TetriumWith(TetriumConfig {
                dynamics_k: Some(k),
                ..TetriumConfig::default()
            })
            .build(),
            EngineConfig::default(),
        )
        .with_drops(drops.clone())
        .run()
        .expect("completes");
        println!("{:>14} {:>10.0} s", format!("k = {k}"), r.avg_response());
    }
    println!("\n(small k limits coordination overhead; the paper finds k of 5-7 captures most gains on 50 sites)");
}
